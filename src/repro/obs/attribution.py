"""Statement-level views of an attributed launch: annotated listings
and machine-readable per-statement tables.

Input is a kernel's IR plus :class:`~repro.gpu.events.KernelStats` whose
``attribution`` table was filled at launch (``attribution=True``); the
cost model apportions the launch's modeled time across statements
(:meth:`~repro.gpu.costmodel.CostModel.stmt_times`), and the renderers
here line the numbers up with the pseudo-CUDA listing:

* :func:`annotate_kernel` — the listing with a per-line gutter
  (``%time | global transactions | bank-conflict extra``), topped by the
  roofline verdict and the launch-overhead share;
* :func:`attribution_rows` — the same data as JSON-ready dicts, one per
  statement, sorted hottest-first.

Both accept either a bare ``(kernel, stats)`` pair or a profiler
:class:`~repro.obs.record.KernelRecord` via the small wrappers at the
bottom, so CLI and tests share one code path.
"""

from __future__ import annotations

from repro.gpu.costmodel import LAUNCH_SID, CostModel
from repro.gpu.device import DeviceProperties
from repro.gpu.events import KernelStats
from repro.gpu.kernelir import Kernel, dump_with_sids, stmt_text, walk_stmts
from repro.obs.roofline import classify, stmt_category

__all__ = ["annotate_kernel", "annotate_record", "attribution_rows",
           "record_rows"]

_GUTTER_BLANK = " " * 24 + " | "


def _require(stats: KernelStats) -> None:
    if stats.attribution is None:
        raise ValueError("stats has no attribution table; run with "
                         "attribution=True")


def annotate_kernel(kernel: Kernel, stats: KernelStats,
                    device: DeviceProperties) -> str:
    """The annotated pseudo-CUDA listing of one attributed launch.

    Gutter columns per statement line: percent of modeled kernel time,
    global transactions, bank-conflict extra accesses.  Non-statement
    lines (braces, the signature) get an empty gutter.
    """
    _require(stats)
    times = CostModel(device).stmt_times(stats)
    roof = classify(stats, timing=CostModel(device).kernel_time(stats),
                    device=device, kernel=kernel)
    lines, sid_lines = dump_with_sids(kernel)
    total = sum(times.values())

    gutters = [_GUTTER_BLANK] * len(lines)
    for sid, lineno in sid_lines.items():
        row = stats.attribution.rows.get(sid)
        us = times.get(sid, 0.0)
        if row is None:  # never executed (e.g. a dead branch)
            gutters[lineno] = f"{'-':>7} {'-':>8} {'-':>7} | "
            continue
        pct = 100.0 * us / total if total > 0 else 0.0
        gutters[lineno] = (f"{pct:6.1f}% {row.global_transactions:>8}"
                          f" {row.bank_conflict_extra:>7} | ")

    head = [
        f"// {kernel.name}: {roof.verdict}"
        + (f" — dominant: {roof.dominant_text}" if roof.dominant_text
           else ""),
        f"// modeled {roof.total_us:.2f} us total; launch overhead "
        f"{times.get(LAUNCH_SID, 0.0):.2f} us "
        f"({100.0 * roof.launch_share:.1f}%)",
        f"{'%time':>7} {'gtx':>8} {'confl':>7} |",
    ]
    return "\n".join(head + [(g + ln).rstrip()
                             for g, ln in zip(gutters, lines)])


def attribution_rows(kernel: Kernel | None, stats: KernelStats,
                     device: DeviceProperties) -> list[dict]:
    """JSON-ready per-statement rows, hottest first.

    The launch overhead appears as a final pseudo-row with
    ``sid == LAUNCH_SID``.  ``kernel`` may be ``None`` (no source text
    available); rows then carry counters and times only.
    """
    _require(stats)
    times = CostModel(device).stmt_times(stats)
    total = sum(times.values())
    texts = ({s.sid: (stmt_text(s), depth)
              for s, depth in walk_stmts(kernel.body) if s.sid >= 0}
             if kernel is not None else {})
    out = []
    for sid, us in times.items():
        entry = {
            "sid": sid,
            "time_us": us,
            "time_share": us / total if total > 0 else 0.0,
        }
        if sid == LAUNCH_SID:
            entry["text"] = "<kernel launch overhead>"
            entry["category"] = "launch"
        else:
            row = stats.attribution.rows[sid]
            entry["category"] = stmt_category(row)
            if sid in texts:
                entry["text"], entry["depth"] = texts[sid]
            entry["counters"] = row.as_dict()
        out.append(entry)
    out.sort(key=lambda e: (-e["time_us"], e["sid"]))
    return out


# -- KernelRecord convenience wrappers ---------------------------------

def annotate_record(record) -> str:
    """Annotated listing straight from a profiler record (needs the
    record to carry the kernel IR — true for every ``acc`` launch)."""
    if record.kernel is None:
        raise ValueError(f"record {record.name!r} carries no kernel IR")
    return annotate_kernel(record.kernel, record.stats, record.device)


def record_rows(record) -> list[dict]:
    """Per-statement JSON rows from a profiler record."""
    return attribution_rows(record.kernel, record.stats, record.device)
