"""Plain-text rendering of a profiling session (the nvprof-style view).

``format_profile`` produces three sections:

* a per-kernel table — launches aggregated by kernel name with modeled
  time, where the time went (compute / global / shared / sync shares),
  and the derived metrics (occupancy, coalescing efficiency, bank
  conflict degree, divergence);
* a per-launch counter table (transactions, bytes, barriers);
* the metrics-registry snapshot, and (when given) the run's
  :class:`~repro.gpu.costmodel.TimingLedger` report.
"""

from __future__ import annotations

from repro.obs.profiler import Profiler
from repro.obs.record import KernelRecord

__all__ = ["format_kernel_table", "format_profile"]


def _pct(part: float, whole: float) -> str:
    if whole <= 0:
        return "-"
    return f"{100.0 * part / whole:.0f}%"


def format_kernel_table(records: list[KernelRecord]) -> str:
    """Aggregate records by kernel name into the headline table."""
    order: list[str] = []
    groups: dict[str, list[KernelRecord]] = {}
    for r in records:
        if r.name not in groups:
            groups[r.name] = []
            order.append(r.name)
        groups[r.name].append(r)

    name_w = max([len(n) for n in order] + [6]) + 2
    header = (f"{'kernel':<{name_w}}{'n':>4}{'total us':>12}{'avg us':>10}"
              f"{'cmp':>5}{'gmem':>6}{'smem':>6}{'sync':>6}"
              f"{'occ':>6}{'coal':>6}{'bank':>6}{'div':>8}")
    lines = [header, "-" * len(header)]
    for name in order:
        rs = groups[name]
        total = sum(r.modeled_us for r in rs)
        busy = sum(r.timing.compute_us + r.timing.global_us
                   + r.timing.shared_us + r.timing.sync_us for r in rs)
        compute = sum(r.timing.compute_us for r in rs)
        gmem = sum(r.timing.global_us for r in rs)
        smem = sum(r.timing.shared_us for r in rs)
        sync = sum(r.timing.sync_us for r in rs)
        gbytes = sum(r.stats.global_bytes for r in rs)
        dbytes = sum(r.stats.dram_bytes for r in rs)
        coal = gbytes / dbytes if dbytes else 1.0
        sacc = sum(r.stats.shared_accesses for r in rs)
        sfree = sacc - sum(r.stats.bank_conflict_extra for r in rs)
        bank = sacc / sfree if sfree > 0 else 1.0
        slots = sum(r.stats.warp_inst_slots for r in rs)
        div = (sum(r.stats.divergent_branches for r in rs) / slots
               if slots else 0.0)
        lines.append(
            f"{name:<{name_w}}{len(rs):>4}{total:>12.2f}"
            f"{total / len(rs):>10.2f}"
            f"{_pct(compute, busy):>5}{_pct(gmem, busy):>6}"
            f"{_pct(smem, busy):>6}{_pct(sync, busy):>6}"
            f"{rs[0].occupancy:>6.2f}{coal:>6.2f}{bank:>6.2f}"
            f"{div:>8.4f}")
    return "\n".join(lines)


def _format_counters(records: list[KernelRecord]) -> str:
    name_w = max([len(r.name) for r in records] + [6]) + 2
    header = (f"{'kernel':<{name_w}}{'#':>4}{'inst':>10}{'gtx':>8}"
              f"{'l2':>8}{'gbytes':>10}{'dram':>10}{'smem':>8}"
              f"{'+confl':>8}{'barr':>6}{'divbr':>7}{'trace':>7}")
    lines = [header, "-" * len(header)]
    for r in records:
        s = r.stats
        lines.append(
            f"{r.name:<{name_w}}{r.launch_index:>4}{s.warp_inst_slots:>10}"
            f"{s.global_transactions:>8}{s.l2_transactions:>8}"
            f"{s.global_bytes:>10}{s.dram_bytes:>10}"
            f"{s.shared_accesses:>8}{s.bank_conflict_extra:>8}"
            f"{s.barriers:>6}{s.divergent_branches:>7}{len(s.trace):>7}")
    return "\n".join(lines)


def _first_attributed(records: list[KernelRecord]) -> list[KernelRecord]:
    """One representative attributed record per kernel name (launch
    order preserved) — repeats of iterative launches add no information
    to the listing."""
    seen: set[str] = set()
    out = []
    for r in records:
        if (r.stats.attribution is not None and r.kernel is not None
                and r.name not in seen):
            seen.add(r.name)
            out.append(r)
    return out


def format_profile(profiler: Profiler, ledger=None) -> str:
    """Full text report for one profiling session."""
    out: list[str] = []
    if not profiler.kernels:
        out.append("(no kernel launches recorded)")
    else:
        dev = profiler.kernels[0].device.name
        comp = profiler.kernels[0].compiler
        head = f"Profile report — device: {dev}"
        if comp:
            head += f", compiler profile: {comp}"
        out += [head, ""]
        out += ["Per-kernel summary "
                "(time shares of busy time; occ=occupancy, "
                "coal=coalescing efficiency, bank=conflict degree, "
                "div=divergent branches/slot):",
                format_kernel_table(profiler.kernels), ""]
        out += ["Per-launch counters:",
                _format_counters(profiler.kernels), ""]
        attributed = _first_attributed(profiler.kernels)
        if attributed:
            from repro.obs.attribution import annotate_record
            out += ["Per-statement attribution "
                    "(first attributed launch per kernel):", ""]
            for rec in attributed:
                out += [annotate_record(rec), ""]
    if ledger is not None:
        out += ["Timing ledger (modeled us, transfers + kernels):",
                ledger.format_report(), ""]
    if (profiler.metrics.counters or profiler.metrics.gauges
            or profiler.metrics.histograms):
        out += ["Metrics:", profiler.metrics.format()]
    return "\n".join(out).rstrip() + "\n"
