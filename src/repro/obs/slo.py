"""``repro.obs.slo`` — latency histograms, quantiles, and SLO tracking.

The serve layer's latency accounting lived as ad-hoc sorted-list
quantiles duplicated across ``scheduler``/``loadgen``/``soak``; this
module centralizes it:

* :func:`quantile` — the single shared nearest-rank quantile helper
  (exact on small samples, deterministic);
* :class:`LatencyHistogram` — a streaming histogram over *fixed*
  log-spaced bin edges (:data:`LATENCY_BIN_EDGES`), so two runs binning
  the same latencies produce byte-identical snapshots and percentile
  estimates are reproducible (reported as the bin's upper edge —
  conservative, never under-reports);
* :class:`SLOMonitor` — per-priority histograms plus a rolling window
  of exact latencies, good/bad accounting against a latency objective,
  and error-budget burn: with objective ``target`` (e.g. 0.99), the
  budget is ``1 - target`` and the burn rate is
  ``violation_rate / (1 - target)`` — burn 1.0 means violations are
  arriving exactly as fast as the budget allows, >1 means the budget is
  being spent faster than it accrues.

The monitor is pure bookkeeping (no clocks, no I/O): the scheduler
feeds it one ``record()`` per completed request, and its
:meth:`~SLOMonitor.snapshot` surfaces in loadgen/soak reports and the
``serve --status`` CLI via :func:`format_slo`.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import deque
from dataclasses import dataclass

__all__ = ["quantile", "LATENCY_BIN_EDGES", "LatencyHistogram",
           "SLOConfig", "SLOMonitor", "format_slo"]


def quantile(values, q: float) -> float:
    """Nearest-rank quantile of a list (0 for an empty list)."""
    if not values:
        return 0.0
    s = sorted(values)
    idx = min(len(s) - 1, max(0, int(round(q * (len(s) - 1)))))
    return s[idx]


def _log_edges() -> tuple:
    """Fixed log-spaced bin edges: 5 bins per decade from 1 µs to 1e8 µs
    (100 s).  A module constant so every histogram in every process bins
    identically — snapshots are diffable across runs and machines."""
    edges = []
    for decade in range(8):          # 1e0 .. 1e7
        lo = 10.0 ** decade
        for step in range(5):
            edges.append(lo * 10.0 ** (step / 5.0))
    edges.append(1e8)
    return tuple(edges)


#: shared bin upper/lower boundaries for every latency histogram (µs)
LATENCY_BIN_EDGES = _log_edges()


class LatencyHistogram:
    """Streaming counts over :data:`LATENCY_BIN_EDGES` (microseconds).

    ``observe`` is O(log bins); values below the first edge land in the
    first bin, values above the last edge in a final overflow bin.
    Percentiles report the matched bin's upper edge (or the exact max
    for the overflow bin's residents is unknown, so the last finite
    edge) — deterministic and conservative.
    """

    __slots__ = ("counts", "count", "total_us", "max_us")

    def __init__(self):
        # one count per edge-bounded bin + one overflow bin
        self.counts = [0] * (len(LATENCY_BIN_EDGES) + 1)
        self.count = 0
        self.total_us = 0.0
        self.max_us = 0.0

    def observe(self, latency_us: float) -> None:
        v = float(latency_us)
        self.counts[bisect_left(LATENCY_BIN_EDGES, v)] += 1
        self.count += 1
        self.total_us += v
        if v > self.max_us:
            self.max_us = v

    def percentile(self, q: float) -> float:
        """The upper edge of the bin holding the q-quantile (0 when
        empty); exact-sample quantiles come from the monitor's rolling
        window, this is the full-history estimate."""
        if self.count == 0:
            return 0.0
        rank = max(1, int(round(q * self.count)))
        seen = 0
        for i, c in enumerate(self.counts):
            seen += c
            if seen >= rank:
                return LATENCY_BIN_EDGES[min(i, len(LATENCY_BIN_EDGES) - 1)]
        return LATENCY_BIN_EDGES[-1]

    def to_dict(self) -> dict:
        """Nonzero bins only: ``{upper_edge_us: count}`` plus totals."""
        bins = {}
        for i, c in enumerate(self.counts):
            if c:
                edge = LATENCY_BIN_EDGES[min(i, len(LATENCY_BIN_EDGES) - 1)]
                bins[f"{edge:.6g}"] = c
        return {"count": self.count,
                "mean_us": round(self.total_us / self.count, 1)
                if self.count else 0.0,
                "max_us": round(self.max_us, 1), "bins": bins}


@dataclass(frozen=True)
class SLOConfig:
    """The service latency objective.

    ``target`` of the requests must complete successfully within
    ``objective_ms``; the error budget is the remaining ``1 - target``
    fraction.  ``window`` bounds the rolling exact-quantile buffer.
    """

    objective_ms: float = 1000.0
    target: float = 0.99
    window: int = 256


class SLOMonitor:
    """Streaming SLO accounting over completed requests.

    A request is *good* when it succeeded AND finished within the
    objective; everything else (errors, sheds, expiries, slow
    successes) burns error budget.  Tracks per-priority fixed-bin
    histograms (full history) and a rolling window of exact latencies
    (recent p50/p95/p99).
    """

    def __init__(self, config: SLOConfig | None = None):
        self.config = config or SLOConfig()
        self.good = 0
        self.bad = 0
        self._hist: dict[int, LatencyHistogram] = {}
        self._window: dict[int, deque] = {}
        self._all_window: deque = deque(maxlen=self.config.window)

    def record(self, priority: int, latency_us: float,
               ok: bool = True) -> None:
        h = self._hist.get(priority)
        if h is None:
            h = self._hist[priority] = LatencyHistogram()
            self._window[priority] = deque(maxlen=self.config.window)
        h.observe(latency_us)
        self._window[priority].append(latency_us)
        self._all_window.append(latency_us)
        if ok and latency_us <= self.config.objective_ms * 1e3:
            self.good += 1
        else:
            self.bad += 1

    # -- derived ---------------------------------------------------------

    @property
    def total(self) -> int:
        return self.good + self.bad

    def violation_rate(self) -> float:
        return self.bad / self.total if self.total else 0.0

    def burn_rate(self) -> float:
        """How fast the error budget is being spent: 1.0 = exactly at
        budget, >1 = violations outpace the objective's allowance."""
        budget = 1.0 - self.config.target
        if budget <= 0:
            return float("inf") if self.bad else 0.0
        return self.violation_rate() / budget

    def budget_remaining(self) -> float:
        """Fraction of the error budget left (clamped at 0)."""
        return max(0.0, 1.0 - self.burn_rate())

    def snapshot(self) -> dict:
        per_priority = {}
        for pri in sorted(self._hist):
            h = self._hist[pri]
            w = list(self._window[pri])
            per_priority[f"p{pri}"] = {
                "count": h.count,
                "rolling_p50_us": round(quantile(w, 0.50), 1),
                "rolling_p95_us": round(quantile(w, 0.95), 1),
                "rolling_p99_us": round(quantile(w, 0.99), 1),
                "hist_p99_us": round(h.percentile(0.99), 1),
                "histogram": h.to_dict(),
            }
        w = list(self._all_window)
        return {
            "objective_ms": self.config.objective_ms,
            "target": self.config.target,
            "good": self.good, "bad": self.bad, "total": self.total,
            "violation_rate": round(self.violation_rate(), 6),
            "burn_rate": round(self.burn_rate(), 4),
            "budget_remaining": round(self.budget_remaining(), 4),
            "rolling_p50_us": round(quantile(w, 0.50), 1),
            "rolling_p95_us": round(quantile(w, 0.95), 1),
            "rolling_p99_us": round(quantile(w, 0.99), 1),
            "priorities": per_priority,
        }


def format_slo(snapshot: dict) -> str:
    """Render an :meth:`SLOMonitor.snapshot` as the ``--status`` text."""
    lines = [
        f"SLO: {snapshot['target']:.2%} within "
        f"{snapshot['objective_ms']:g} ms",
        f"  requests: {snapshot['total']} "
        f"(good {snapshot['good']}, bad {snapshot['bad']})",
        f"  violation rate: {snapshot['violation_rate']:.4f}   "
        f"burn rate: {snapshot['burn_rate']:.2f}x   "
        f"budget remaining: {snapshot['budget_remaining']:.2%}",
        f"  rolling latency: p50 {snapshot['rolling_p50_us']:.0f}us  "
        f"p95 {snapshot['rolling_p95_us']:.0f}us  "
        f"p99 {snapshot['rolling_p99_us']:.0f}us",
    ]
    for pri, row in snapshot.get("priorities", {}).items():
        lines.append(f"  {pri}: n={row['count']}  "
                     f"p50 {row['rolling_p50_us']:.0f}us  "
                     f"p95 {row['rolling_p95_us']:.0f}us  "
                     f"p99 {row['rolling_p99_us']:.0f}us")
    return "\n".join(lines)
