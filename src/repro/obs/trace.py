"""Span-based trace recording, request-scoped causal tracing, and the
Chrome-trace exporter.

The simulator has no real clock: kernel and transfer durations are
*modeled* microseconds, while compile phases are host work measured in
wall time.  The recorder therefore keeps one virtual clock per *track*
(``device`` for modeled time, ``host`` for compile-side wall time) and
lays spans out back-to-back: each :meth:`TraceRecorder.add` places a span
at the track's current clock and advances it by the span's duration, and
:meth:`TraceRecorder.region` brackets a group of child spans with an
enclosing parent span (compile → transfer → kernel → reduction-finalize
all nest under their run).

Export is the Chrome trace-event JSON format (load the file in
``chrome://tracing`` or https://ui.perfetto.dev): complete events
(``"ph": "X"``) with microsecond timestamps, one ``tid`` per track, plus
``thread_name`` metadata events so the tracks are labeled.

**Request tracing.**  The second half of this module is the
request-scoped causal layer over the :mod:`repro.obs.timeline` bus:

* :func:`tracing` / :func:`install_tracing` turn the layer on (it is
  strictly opt-in — uninstalled, no event gains a trace field and the
  run path executes one extra module-global read at most);
* :func:`span` opens a structural span — a fresh root when no context
  is active (``trace_id`` defaults to an allocated ``tNNNN``), a child
  otherwise — and every event emitted inside it (scheduler decisions,
  pass spans, compile-cache counters, kernel/transfer spans, fault
  records) is stamped with ``trace_id``/``span_id``/``parent_id`` by
  :meth:`~repro.obs.timeline.Timeline.emit`;
* :func:`attach` re-establishes a context on a worker thread (executor
  threads do not inherit contextvars);
* :func:`assemble` rebuilds per-trace span trees from exported events,
  :func:`critical_path` walks the dominant chain with self-vs-child
  time, :func:`render_tree` prints the annotated text report behind
  ``python -m repro obs trace``, and :func:`tree_to_chrome` exports one
  request as a flamegraph-shaped Chrome trace;
* :class:`TailSampler` bounds memory: error/deadline-missed traces are
  always kept, the k slowest are kept, every nth of the rest is kept
  deterministically, and everything else is pruned from the ring.

Kernel and transfer spans carry *modeled* microseconds while structural
spans carry wall time; the analyzer never mixes the clocks — self time
is computed against same-clock children only, and modeled spans are
rendered with a ``~`` marker.
"""

from __future__ import annotations

import heapq
import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.obs import timeline as _timeline

__all__ = ["CounterSample", "Span", "TraceRecorder",
           "SpanHandle", "SpanNode", "TraceTree", "TailSampler",
           "install_tracing", "uninstall_tracing", "tracing",
           "tracing_enabled", "span", "attach", "current_ids",
           "assemble", "critical_path", "render_tree", "tree_to_chrome",
           "verify_request_traces"]

#: track name → Chrome-trace tid
TRACKS = {"device": 0, "host": 1}


@dataclass
class Span:
    """One timed interval on a track (microseconds)."""

    name: str
    cat: str
    start_us: float
    dur_us: float
    track: str = "device"
    args: dict = field(default_factory=dict)

    def to_chrome(self) -> dict:
        return {
            "name": self.name,
            "cat": self.cat,
            "ph": "X",
            "ts": round(self.start_us, 4),
            "dur": round(self.dur_us, 4),
            "pid": 0,
            "tid": TRACKS.get(self.track, len(TRACKS)),
            "args": self.args,
        }


@dataclass
class CounterSample:
    """One Chrome counter-event sample (``"ph": "C"``): a named track of
    numeric series stacked by the viewer at a point in time."""

    name: str
    ts_us: float
    values: dict
    track: str = "device"

    def to_chrome(self) -> dict:
        return {
            "name": self.name,
            "ph": "C",
            "ts": round(self.ts_us, 4),
            "pid": 0,
            "tid": TRACKS.get(self.track, len(TRACKS)),
            "args": self.values,
        }


@dataclass
class TraceRecorder:
    """Accumulates spans on per-track virtual timelines."""

    spans: list[Span] = field(default_factory=list)
    counters: list[CounterSample] = field(default_factory=list)
    _clocks: dict[str, float] = field(default_factory=dict)

    def now(self, track: str = "device") -> float:
        return self._clocks.get(track, 0.0)

    def add(self, name: str, cat: str, dur_us: float,
            track: str = "device", **args) -> Span:
        """Place a span at the track clock; advance the clock past it."""
        start = self._clocks.get(track, 0.0)
        span = Span(name=name, cat=cat, start_us=start,
                    dur_us=float(dur_us), track=track, args=args)
        self.spans.append(span)
        self._clocks[track] = start + float(dur_us)
        return span

    def counter(self, name: str, values: dict,
                track: str = "device") -> CounterSample:
        """Sample a counter track at the track's current clock.

        ``values`` maps series name → number; repeated samples under the
        same ``name`` become a stacked counter track in trace viewers
        (used for the per-statement attribution counters)."""
        sample = CounterSample(name=name, ts_us=self._clocks.get(track, 0.0),
                               values=dict(values), track=track)
        self.counters.append(sample)
        return sample

    @contextmanager
    def region(self, name: str, cat: str = "region",
               track: str = "device", **args):
        """Enclose the spans added inside the ``with`` in a parent span."""
        start = self._clocks.get(track, 0.0)
        span = Span(name=name, cat=cat, start_us=start, dur_us=0.0,
                    track=track, args=args)
        # insert the parent before its children so viewers nest it naturally
        self.spans.append(span)
        try:
            yield span
        finally:
            span.dur_us = self._clocks.get(track, 0.0) - start

    def to_chrome(self) -> dict:
        """The Chrome trace-event document (``traceEvents`` object form)."""
        events: list[dict] = [
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
             "args": {"name": f"{track} (modeled)" if track == "device"
                      else f"{track} (wall)"}}
            for track, tid in TRACKS.items()
        ]
        events.extend(s.to_chrome() for s in self.spans)
        events.extend(c.to_chrome() for c in self.counters)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_chrome(), indent=indent)


# ======================================================================
# Request-scoped causal tracing
# ======================================================================

#: span names carrying *modeled* microseconds rather than wall time; the
#: analyzer detects the clock domain by name so the existing gpu emit
#: sites need no changes
_MODELED_PREFIXES = ("kernel:", "transfer:")


def install_tracing(tracer=None):
    """Install the request-tracing layer (allocates a fresh
    deterministic :class:`~repro.obs.timeline.Tracer` unless given one).
    Stamping only happens while a timeline bus is *also* installed."""
    return _timeline.install_tracer(tracer)


def uninstall_tracing():
    """Remove the tracer; subsequent events carry no trace fields."""
    return _timeline.uninstall_tracer()


def tracing_enabled() -> bool:
    """True when both a bus and a tracer are installed — the guard every
    structural emit site checks before opening a request-trace span."""
    return _timeline.trace_active()


@contextmanager
def tracing(tracer=None):
    """Scoped tracer installation (restores the previous tracer after)."""
    prev = _timeline.tracer()
    t = _timeline.install_tracer(tracer)
    try:
        yield t
    finally:
        if prev is None:
            _timeline.uninstall_tracer()
        else:
            _timeline.install_tracer(prev)


@dataclass
class SpanHandle:
    """The mutable view of an open span yielded by :func:`span`: set
    ``handle.attrs[...]`` inside the body to annotate the span event
    emitted at close.  Inert (all ids ``None``) when tracing is off."""

    trace_id: object
    span_id: int | None
    parent_id: int | None
    attrs: dict


@contextmanager
def span(category: str, name: str, *, trace_id=None, **attrs):
    """Open a structural wall-clock span in the current trace context.

    With no active context this starts a *root*: ``trace_id`` names the
    trace (a serve request passes its request id) or one is allocated.
    With an active context the span becomes a child and ``trace_id`` is
    ignored.  Everything emitted inside the body — by any subsystem —
    is stamped as a descendant via the contextvar; the span's own event
    is emitted at close (``ts_us`` marks the END; start is ``ts_us -
    dur_us``) carrying its explicit ids, so assembly never depends on
    emission order.  Exceptions annotate ``error=<type>`` and re-raise.
    With tracing uninstalled the body runs with an inert handle and
    nothing is emitted.
    """
    tl = _timeline.current()
    tr = _timeline.tracer()
    if tl is None or tr is None:
        yield SpanHandle(None, None, None, {})
        return
    ctx = _timeline._TRACE_CTX.get()
    if ctx is not None:
        tid, parent = ctx
    else:
        tid = trace_id if trace_id is not None else tr.new_trace_id()
        parent = None
    sid = tr.new_span_id()
    handle = SpanHandle(tid, sid, parent, dict(attrs))
    token = _timeline._TRACE_CTX.set((tid, sid))
    t0 = time.perf_counter()
    try:
        yield handle
    except BaseException as exc:
        handle.attrs.setdefault("error", type(exc).__name__)
        raise
    finally:
        _timeline._TRACE_CTX.reset(token)
        cur = _timeline.current()
        if cur is not None:
            ids = {"trace_id": tid, "span_id": sid}
            if parent is not None:
                ids["parent_id"] = parent
            ids.update(handle.attrs)
            cur.span(category, name,
                     (time.perf_counter() - t0) * 1e6, **ids)


@contextmanager
def attach(trace_id, span_id=None):
    """Re-establish a trace context on a worker thread.

    Executor threads do not inherit contextvars, so cross-thread
    handoffs capture :func:`current_ids` on the submitting side and
    ``attach(*ids)`` around the thread body."""
    token = _timeline._TRACE_CTX.set((trace_id, span_id))
    try:
        yield
    finally:
        _timeline._TRACE_CTX.reset(token)


def current_ids():
    """The active ``(trace_id, parent_span_id)`` context, or ``None``."""
    return _timeline._TRACE_CTX.get()


class TailSampler:
    """Deterministic tail sampling over completed request traces.

    Keep rules (a trace kept by *any* rule survives): every trace whose
    status is in ``keep_statuses`` (errors and missed deadlines must
    stay debuggable), the ``keep_slowest`` highest-latency traces seen
    so far (min-heap; a trace evicted by a slower arrival is pruned
    unless another rule holds it), and deterministically every
    ``sample_every``-th completion (the 1st, 1+n-th, ...).  Everything
    else is pruned from the ring via
    :meth:`~repro.obs.timeline.Timeline.prune_trace`, which is how
    tracing bounds memory under sustained load.
    """

    def __init__(self, keep_slowest: int = 8, sample_every: int = 16,
                 keep_statuses=("error", "expired")):
        self.keep_slowest = int(keep_slowest)
        self.sample_every = int(sample_every)
        self.keep_statuses = tuple(keep_statuses)
        self._heap: list = []       # (latency_us, arrival, trace_id)
        self._nth_kept: set = set()
        self._status_kept: set = set()
        self._offered = 0

    def offer(self, trace_id, latency_us: float, status: str = "ok"):
        """Judge one completed trace: ``(keep, evicted)`` where
        ``evicted`` lists trace ids to prune (possibly including this
        one, possibly a previously-kept trace displaced from the
        slowest-k heap)."""
        self._offered += 1
        evicted: list = []
        keep = False
        if status in self.keep_statuses:
            self._status_kept.add(trace_id)
            keep = True
        if self.sample_every > 0 and (self._offered - 1) % self.sample_every == 0:
            self._nth_kept.add(trace_id)
            keep = True
        if self.keep_slowest > 0:
            entry = (float(latency_us), self._offered, trace_id)
            if len(self._heap) < self.keep_slowest:
                heapq.heappush(self._heap, entry)
                keep = True
            elif entry > self._heap[0]:
                _, _, out = heapq.heapreplace(self._heap, entry)
                keep = True
                if out not in self._nth_kept and out not in self._status_kept:
                    evicted.append(out)
        if not keep:
            evicted.append(trace_id)
        return keep, evicted

    def kept_ids(self) -> set:
        ids = {tid for _, _, tid in self._heap}
        return ids | self._nth_kept | self._status_kept

    def stats(self) -> dict:
        kept = len(self.kept_ids())
        return {"offered": self._offered, "kept": kept,
                "pruned": max(0, self._offered - kept),
                "keep_slowest": self.keep_slowest,
                "sample_every": self.sample_every,
                "keep_statuses": list(self.keep_statuses)}


# -- assembly and analysis ---------------------------------------------


@dataclass
class SpanNode:
    """One span in a reassembled request tree.  ``ts_us`` is the emit
    time, i.e. the span's END; ``start_us`` derives from it."""

    trace_id: object
    span_id: int
    parent_id: int | None
    category: str
    name: str
    ts_us: float
    dur_us: float
    attrs: dict
    children: list = field(default_factory=list)
    #: non-span events (decisions, counters, faults) stamped with this
    #: span as parent — the causal annotations on the tree
    events: list = field(default_factory=list)

    @property
    def start_us(self) -> float:
        return self.ts_us - self.dur_us

    @property
    def is_modeled(self) -> bool:
        return self.name.startswith(_MODELED_PREFIXES)


@dataclass
class TraceTree:
    """All spans of one trace, linked parent→children."""

    trace_id: object
    roots: list = field(default_factory=list)
    #: spans whose parent_id references a span not present (pruned by
    #: the ring, or a genuinely broken chain) — a request trace with
    #: orphans fails :func:`verify_request_traces`
    orphans: list = field(default_factory=list)
    #: non-span events with no (known) parent span
    events: list = field(default_factory=list)

    @property
    def root(self):
        """The heaviest root (a well-formed request trace has one)."""
        return max(self.roots, key=lambda n: n.dur_us) if self.roots else None


def _as_dict(ev) -> dict:
    return ev if isinstance(ev, dict) else ev.to_dict()


def assemble(events) -> dict:
    """Rebuild per-trace span trees from stamped events.

    Accepts :class:`~repro.obs.timeline.Event` objects or exported
    dicts, in any order (spans emit at close, so parents follow their
    children).  Events without a ``trace_id`` are ignored.  Returns
    ``{trace_id: TraceTree}`` in first-appearance order; children are
    sorted by start time for stable rendering.
    """
    order: list = []
    spans: dict = {}    # tid -> {span_id: SpanNode}
    others: dict = {}   # tid -> [(parent_id, event-dict)]
    for raw in events:
        ev = _as_dict(raw)
        attrs = ev.get("attrs") or {}
        tid = attrs.get("trace_id")
        if tid is None:
            continue
        if tid not in spans:
            spans[tid] = {}
            others[tid] = []
            order.append(tid)
        sid = attrs.get("span_id")
        if ev.get("kind") == "span" and sid is not None:
            spans[tid][sid] = SpanNode(
                trace_id=tid, span_id=sid,
                parent_id=attrs.get("parent_id"),
                category=ev.get("category", ""),
                name=ev.get("name", ""),
                ts_us=float(ev.get("ts_us", 0.0)),
                dur_us=float(ev.get("dur_us", 0.0)),
                attrs={k: v for k, v in attrs.items()
                       if k not in ("trace_id", "span_id", "parent_id")})
        else:
            others[tid].append((attrs.get("parent_id"), ev))
    trees: dict = {}
    for tid in order:
        tree = TraceTree(trace_id=tid)
        by_id = spans[tid]
        for node in by_id.values():
            if node.parent_id is None:
                tree.roots.append(node)
            elif node.parent_id in by_id:
                by_id[node.parent_id].children.append(node)
            else:
                tree.orphans.append(node)
        for node in by_id.values():
            node.children.sort(key=lambda n: (n.start_us, n.span_id))
        tree.roots.sort(key=lambda n: (n.start_us, n.span_id))
        for parent_id, ev in others[tid]:
            if parent_id is not None and parent_id in by_id:
                by_id[parent_id].events.append(ev)
            else:
                tree.events.append(ev)
        trees[tid] = tree
    return trees


def _union_us(intervals) -> float:
    """Total length of the union of ``(lo, hi)`` intervals — overlapping
    children (hedged dispatches racing on two devices) must not be
    double-subtracted from their parent's self time."""
    total, end = 0.0, None
    for lo, hi in sorted(intervals):
        if end is None or lo > end:
            total += hi - lo
            end = hi
        elif hi > end:
            total += hi - end
            end = hi
    return total


def _self_us(node: SpanNode) -> float:
    """Self time: the span's duration not covered by same-clock children.

    Wall children are subtracted as an interval union clipped to the
    parent (robust to hedge overlap and clock skew at the edges).  A
    span with only modeled children (``run:*`` over kernel/transfer
    spans) lives in two clock domains; self time is then the wall
    duration minus the modeled total, clamped at zero — an
    approximation, flagged by the ``~`` markers in the rendering.
    """
    wall = [c for c in node.children if not c.is_modeled]
    if wall:
        clipped = []
        for c in wall:
            lo = max(c.start_us, node.start_us)
            hi = min(c.ts_us, node.ts_us)
            if hi > lo:
                clipped.append((lo, hi))
        return max(0.0, node.dur_us - _union_us(clipped))
    modeled = sum(c.dur_us for c in node.children)
    return max(0.0, node.dur_us - min(node.dur_us, modeled))


def critical_path(tree: TraceTree) -> list:
    """The dominant chain of a trace, heaviest root downward.

    At each step descend into the largest *wall-clock* child; once only
    modeled children remain, take the largest modeled leaf — yielding
    the queue → pass/compile → kernel chain the tentpole asks for.
    Each step reports total and self time and its clock domain.
    """
    node = tree.root
    path = []
    while node is not None:
        path.append({"category": node.category, "name": node.name,
                     "dur_us": round(node.dur_us, 3),
                     "self_us": round(_self_us(node), 3),
                     "modeled": node.is_modeled})
        kids = node.children
        wall = [c for c in kids if not c.is_modeled]
        pick = wall or kids
        node = max(pick, key=lambda n: (n.dur_us, -n.span_id)) if pick else None
    return path


def render_tree(tree: TraceTree) -> str:
    """The annotated text report behind ``python -m repro obs trace``:
    the span tree with durations and self times (``~`` marks modeled
    microseconds), abandoned/error annotations, decision events, then
    the critical path."""
    lines = [f"trace {tree.trace_id}"]

    def fmt_us(us: float, modeled: bool) -> str:
        return f"{'~' if modeled else ''}{us:.1f}us"

    def walk(node: SpanNode, depth: int) -> None:
        extra = ""
        if node.attrs.get("abandoned"):
            extra += "  [abandoned]"
        if "error" in node.attrs:
            extra += f"  [error={node.attrs['error']}]"
        lines.append(f"{'  ' * depth}{node.category}/{node.name}  "
                     f"{fmt_us(node.dur_us, node.is_modeled)}  "
                     f"(self {fmt_us(_self_us(node), node.is_modeled)})"
                     f"{extra}")
        for ev in node.events:
            if ev.get("kind") == "decision":
                lines.append(f"{'  ' * (depth + 1)}* {ev.get('name')}")
        for c in node.children:
            walk(c, depth + 1)

    for root in tree.roots:
        walk(root, 1)
    for o in tree.orphans:
        lines.append(f"  [orphan] {o.category}/{o.name}  "
                     f"{fmt_us(o.dur_us, o.is_modeled)} "
                     f"(parent_id={o.parent_id})")
    path = critical_path(tree)
    if path:
        lines.append("critical path:")
        for step in path:
            lines.append(f"  -> {step['category']}/{step['name']}  "
                         f"{fmt_us(step['dur_us'], step['modeled'])}  "
                         f"(self {fmt_us(step['self_us'], step['modeled'])})")
    return "\n".join(lines)


def tree_to_chrome(tree: TraceTree) -> dict:
    """One request as a flamegraph-shaped Chrome trace.

    Wall spans keep their recorded offsets (normalized to the trace
    start) on the host track; modeled kernel/transfer spans are laid
    out back-to-back on the device track via the recorder's virtual
    clock, since their modeled microseconds don't live on the wall
    timeline."""
    rec = TraceRecorder()
    t0 = min((r.start_us for r in tree.roots), default=0.0)

    def walk(node: SpanNode) -> None:
        if node.is_modeled:
            rec.add(node.name, node.category, node.dur_us,
                    track="device", **node.attrs)
        else:
            rec.spans.append(Span(
                name=node.name, cat=node.category,
                start_us=node.start_us - t0, dur_us=node.dur_us,
                track="host", args=dict(node.attrs)))
        for c in node.children:
            walk(c)

    for r in tree.roots:
        walk(r)
    for o in tree.orphans:
        walk(o)
    return rec.to_chrome()


def _recorded_latency_us(tree: TraceTree, root: SpanNode):
    """The scheduler-recorded latency from the request's ``complete``
    decision (stamped as a child of the root span)."""
    for pool in (root.events, tree.events):
        for ev in pool:
            if ev.get("kind") == "decision" and ev.get("name") == "complete":
                lat = (ev.get("attrs") or {}).get("latency_us")
                if lat is not None:
                    return float(lat)
    return None


def verify_request_traces(trees: dict, tolerance: float = 0.01) -> dict:
    """The chaos-soak trace gate over assembled traces.

    Considers traces rooted in a ``request:*`` span (compile-only or
    reference traces are not requests).  Every such trace must form
    exactly one rooted tree with no orphan spans, and the slowest
    request's root span duration must match the scheduler's recorded
    ``latency_us`` within ``tolerance`` (default 1%) — the wall-time
    decomposition the acceptance criteria pin.
    """
    problems: list = []
    requests = []
    for tid, tree in trees.items():
        req_roots = [r for r in tree.roots if r.name.startswith("request:")]
        if not req_roots:
            continue
        requests.append((tid, tree, req_roots))
        if len(tree.roots) != 1:
            problems.append(f"trace {tid}: {len(tree.roots)} roots "
                            f"({sorted(r.name for r in tree.roots)})")
        if tree.orphans:
            problems.append(f"trace {tid}: {len(tree.orphans)} orphan "
                            f"span(s) ({sorted(o.name for o in tree.orphans)})")
    slowest = None
    if requests:
        tid, tree, req_roots = max(requests,
                                   key=lambda it: it[2][0].dur_us)
        root = req_roots[0]
        slowest = {"trace_id": tid, "dur_us": round(root.dur_us, 3),
                   "critical_path": [f"{s['category']}/{s['name']}"
                                     for s in critical_path(tree)]}
        recorded = _recorded_latency_us(tree, root)
        if recorded is not None:
            err = abs(root.dur_us - recorded) / max(recorded, 1e-9)
            slowest["latency_us"] = recorded
            slowest["latency_err"] = round(err, 6)
            if err > tolerance:
                problems.append(
                    f"trace {tid}: root span {root.dur_us:.1f}us vs "
                    f"recorded latency {recorded:.1f}us "
                    f"(err {err:.2%} > {tolerance:.0%})")
    return {"ok": not problems, "requests": len(requests),
            "problems": problems, "slowest": slowest}
