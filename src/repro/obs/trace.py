"""Span-based trace recording with a Chrome-trace exporter.

The simulator has no real clock: kernel and transfer durations are
*modeled* microseconds, while compile phases are host work measured in
wall time.  The recorder therefore keeps one virtual clock per *track*
(``device`` for modeled time, ``host`` for compile-side wall time) and
lays spans out back-to-back: each :meth:`TraceRecorder.add` places a span
at the track's current clock and advances it by the span's duration, and
:meth:`TraceRecorder.region` brackets a group of child spans with an
enclosing parent span (compile → transfer → kernel → reduction-finalize
all nest under their run).

Export is the Chrome trace-event JSON format (load the file in
``chrome://tracing`` or https://ui.perfetto.dev): complete events
(``"ph": "X"``) with microsecond timestamps, one ``tid`` per track, plus
``thread_name`` metadata events so the tracks are labeled.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["CounterSample", "Span", "TraceRecorder"]

#: track name → Chrome-trace tid
TRACKS = {"device": 0, "host": 1}


@dataclass
class Span:
    """One timed interval on a track (microseconds)."""

    name: str
    cat: str
    start_us: float
    dur_us: float
    track: str = "device"
    args: dict = field(default_factory=dict)

    def to_chrome(self) -> dict:
        return {
            "name": self.name,
            "cat": self.cat,
            "ph": "X",
            "ts": round(self.start_us, 4),
            "dur": round(self.dur_us, 4),
            "pid": 0,
            "tid": TRACKS.get(self.track, len(TRACKS)),
            "args": self.args,
        }


@dataclass
class CounterSample:
    """One Chrome counter-event sample (``"ph": "C"``): a named track of
    numeric series stacked by the viewer at a point in time."""

    name: str
    ts_us: float
    values: dict
    track: str = "device"

    def to_chrome(self) -> dict:
        return {
            "name": self.name,
            "ph": "C",
            "ts": round(self.ts_us, 4),
            "pid": 0,
            "tid": TRACKS.get(self.track, len(TRACKS)),
            "args": self.values,
        }


@dataclass
class TraceRecorder:
    """Accumulates spans on per-track virtual timelines."""

    spans: list[Span] = field(default_factory=list)
    counters: list[CounterSample] = field(default_factory=list)
    _clocks: dict[str, float] = field(default_factory=dict)

    def now(self, track: str = "device") -> float:
        return self._clocks.get(track, 0.0)

    def add(self, name: str, cat: str, dur_us: float,
            track: str = "device", **args) -> Span:
        """Place a span at the track clock; advance the clock past it."""
        start = self._clocks.get(track, 0.0)
        span = Span(name=name, cat=cat, start_us=start,
                    dur_us=float(dur_us), track=track, args=args)
        self.spans.append(span)
        self._clocks[track] = start + float(dur_us)
        return span

    def counter(self, name: str, values: dict,
                track: str = "device") -> CounterSample:
        """Sample a counter track at the track's current clock.

        ``values`` maps series name → number; repeated samples under the
        same ``name`` become a stacked counter track in trace viewers
        (used for the per-statement attribution counters)."""
        sample = CounterSample(name=name, ts_us=self._clocks.get(track, 0.0),
                               values=dict(values), track=track)
        self.counters.append(sample)
        return sample

    @contextmanager
    def region(self, name: str, cat: str = "region",
               track: str = "device", **args):
        """Enclose the spans added inside the ``with`` in a parent span."""
        start = self._clocks.get(track, 0.0)
        span = Span(name=name, cat=cat, start_us=start, dur_us=0.0,
                    track=track, args=args)
        # insert the parent before its children so viewers nest it naturally
        self.spans.append(span)
        try:
            yield span
        finally:
            span.dur_us = self._clocks.get(track, 0.0) - start

    def to_chrome(self) -> dict:
        """The Chrome trace-event document (``traceEvents`` object form)."""
        events: list[dict] = [
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
             "args": {"name": f"{track} (modeled)" if track == "device"
                      else f"{track} (wall)"}}
            for track, tid in TRACKS.items()
        ]
        events.extend(s.to_chrome() for s in self.spans)
        events.extend(c.to_chrome() for c in self.counters)
        return {"traceEvents": events, "displayTimeUnit": "ms"}

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_chrome(), indent=indent)
