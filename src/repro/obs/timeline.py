"""``repro.obs.timeline`` — the unified structured telemetry bus.

Every observable subsystem emits typed events into one opt-in bus:

* ``repro.passes``  — one ``span`` per compilation pass, one ``decision``
  per autotuned reduction variable;
* ``repro.gpu``     — launch-compile-cache ``counter`` hits/misses, one
  executor-mode ``decision`` per launch, kernel/transfer ``span``s with
  modeled durations;
* ``repro.faults``  — one ``fault`` event per injection, plus ``decision``
  events for retry and degrade transitions in the hardened run path;
* ``repro.bench``   — cost-model-vs-wall-clock ``counter`` samples from
  the perf-history recorder (:mod:`repro.bench.history`).

The bus is a process-wide, strictly opt-in singleton: nothing is
installed by default, every emit site is guarded by ``current() is
None``, and with no timeline installed the run path allocates nothing —
the same zero-overhead contract the profiler and attribution layers pin
(enforced by the bench smoke ``telemetry_guard``).

Events carry a monotonic timestamp (microseconds since the timeline's
epoch, from :func:`time.perf_counter`) and a process-unique sequence
number, live in a bounded ring buffer (oldest events drop first, with a
drop counter), and support deterministic per-category sampling
(``sample={"gpu": 10}`` keeps every 10th ``gpu`` event).  Export is
JSONL — a header record (drop/sampling accounting, so downstream tools
can tell a truncated trace from a quiet one) followed by one event
object per line — consumed by ``python -m repro obs events`` / ``obs
trace`` and by any external dashboard.

**Request tracing** (:mod:`repro.obs.trace`) is a second opt-in layer on
top of the bus: when a :class:`Tracer` is installed *and* a contextvar
trace context is active, :meth:`Timeline.emit` stamps every event's
attrs with ``trace_id``/``span_id``/``parent_id`` so flat events
reassemble into per-request span trees.  With no tracer installed the
stamping path is a single module-global read and **no new fields are
emitted** — the telemetry_guard zero-overhead pin is preserved.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = ["Event", "Timeline", "Tracer", "current", "install",
           "uninstall", "enabled", "emit", "EVENT_KINDS", "tracer",
           "install_tracer", "uninstall_tracer", "trace_active",
           "read_jsonl"]

#: the typed event vocabulary; anything else is rejected at emit time
EVENT_KINDS = ("span", "counter", "decision", "fault")


def _json_default(obj):
    """Coerce non-JSON attr values (numpy scalars, tuples of them).

    ``float`` before ``int``: ``int(np.float32(2.5))`` would silently
    truncate, while ``float`` of an integer scalar is exact (attr values
    are small counters and durations, well inside 2**53).
    """
    item = getattr(obj, "item", None)
    if item is not None:
        try:
            return item()
        except (TypeError, ValueError):
            pass
    for cast in (float, int):
        try:
            return cast(obj)
        except (TypeError, ValueError):
            continue
    return str(obj)


class Tracer:
    """Allocates process-unique trace and span ids for request tracing.

    Counter-based (no randomness, no wall clock) so two identical runs
    allocate identical ids — trace exports are deterministic and
    diffable.  ``itertools.count`` is atomic under the GIL, so device
    worker threads may allocate concurrently.
    """

    def __init__(self):
        self._span_ids = itertools.count(1)
        self._trace_ids = itertools.count(1)

    def new_span_id(self) -> int:
        return next(self._span_ids)

    def new_trace_id(self) -> str:
        return f"t{next(self._trace_ids):04d}"


#: the installed tracer (None = request tracing off, the default) and the
#: per-context (task / attached thread) trace position: (trace_id,
#: parent_span_id) or None.  Contextvars give each asyncio task its own
#: copy, so concurrent requests cannot cross-stamp; executor threads do
#: NOT inherit them — cross-thread handoff goes through
#: :func:`repro.obs.trace.attach`.
_TRACER: Tracer | None = None
_TRACE_CTX: contextvars.ContextVar = contextvars.ContextVar(
    "repro_trace_ctx", default=None)


def tracer() -> Tracer | None:
    """The installed tracer, or ``None`` (request tracing off)."""
    return _TRACER


def install_tracer(t: Tracer | None = None) -> Tracer:
    """Install (and return) the process tracer; replaces any previous."""
    global _TRACER
    _TRACER = t if t is not None else Tracer()
    return _TRACER


def uninstall_tracer() -> Tracer | None:
    """Remove the tracer; returns the removed one (if any)."""
    global _TRACER
    t, _TRACER = _TRACER, None
    return t


def trace_active() -> bool:
    """True when both a bus and a tracer are installed — the guard
    structural emit sites use before opening request-trace spans."""
    return _TRACER is not None and _CURRENT is not None


@dataclass(frozen=True)
class Event:
    """One telemetry event on the bus.

    ``ts_us`` is monotonic (relative to the owning timeline's epoch) and
    ``seq`` totally orders events even when timestamps collide; ``dur_us``
    is meaningful for ``span`` events (0 for instantaneous kinds).
    """

    seq: int
    ts_us: float
    category: str   # "passes" | "gpu" | "faults" | "bench" | ...
    kind: str       # one of EVENT_KINDS
    name: str
    dur_us: float = 0.0
    attrs: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"seq": self.seq, "ts_us": round(self.ts_us, 3),
                "category": self.category, "kind": self.kind,
                "name": self.name, "dur_us": round(self.dur_us, 4),
                "attrs": dict(self.attrs)}

    def to_jsonl(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True,
                          default=_json_default)


class Timeline:
    """Bounded ring buffer of :class:`Event` with per-category sampling.

    ``capacity`` bounds memory: when full, the oldest event is dropped
    and ``dropped`` incremented — telemetry must never OOM the program
    it observes.  ``sample`` maps category → keep-every-nth (``{"gpu":
    8}`` keeps the 1st, 9th, ... ``gpu`` event; sampled-out events count
    in ``sampled_out``).  Emission is cheap and thread-tolerant: the
    sequence counter is an :func:`itertools.count` (atomic under the
    GIL) and the deque append is atomic.
    """

    def __init__(self, capacity: int = 8192,
                 sample: dict[str, int] | None = None):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque[Event] = deque(maxlen=capacity)
        self._seq = itertools.count()
        self._epoch = time.perf_counter()
        self._sample = {c: int(n) for c, n in (sample or {}).items()}
        self._sample_counts: dict[str, int] = {}
        self.emitted = 0      # events offered to the bus
        self.sampled_out = 0  # dropped by per-category sampling
        self.dropped = 0      # dropped by the ring bound
        self.pruned = 0       # dropped by trace tail-sampling (prune_trace)
        #: trace ids pruned by tail sampling; late events of these traces
        #: (an abandoned hedge loser finishing after the verdict) are
        #: suppressed at emit so a pruned trace cannot leave orphans
        self._suppressed_traces: set = set()

    # -- emission --------------------------------------------------------

    def emit(self, category: str, kind: str, name: str,
             dur_us: float = 0.0, **attrs) -> Event | None:
        """Append one event; returns it, or ``None`` when sampled out."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r} "
                             f"(expected one of {EVENT_KINDS})")
        tr = _TRACER
        if tr is not None:
            # request-trace stamping: explicit ids (from trace.span's
            # emit-at-close) win over the ambient context
            ctx = _TRACE_CTX.get()
            if ctx is not None:
                attrs.setdefault("trace_id", ctx[0])
                if kind == "span" and "span_id" not in attrs:
                    attrs["span_id"] = tr.new_span_id()
                if ctx[1] is not None:
                    attrs.setdefault("parent_id", ctx[1])
            tid = attrs.get("trace_id")
            if tid is not None and tid in self._suppressed_traces:
                self.emitted += 1
                self.pruned += 1
                return None
        self.emitted += 1
        n = self._sample.get(category)
        if n is not None:
            c = self._sample_counts.get(category, 0)
            self._sample_counts[category] = c + 1
            if n <= 0 or c % n:
                self.sampled_out += 1
                return None
        if len(self._events) == self.capacity:
            self.dropped += 1
        ev = Event(seq=next(self._seq),
                   ts_us=(time.perf_counter() - self._epoch) * 1e6,
                   category=category, kind=kind, name=name,
                   dur_us=float(dur_us), attrs=attrs)
        self._events.append(ev)
        return ev

    def span(self, category: str, name: str, dur_us: float, **attrs):
        return self.emit(category, "span", name, dur_us, **attrs)

    def counter(self, category: str, name: str, **attrs):
        return self.emit(category, "counter", name, **attrs)

    def decision(self, category: str, name: str, **attrs):
        return self.emit(category, "decision", name, **attrs)

    def fault(self, category: str, name: str, **attrs):
        return self.emit(category, "fault", name, **attrs)

    @contextmanager
    def timed_span(self, category: str, name: str, **attrs):
        """Wall-clock span around a ``with`` body (host-side work)."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.span(category, name, (time.perf_counter() - t0) * 1e6,
                      **attrs)

    # -- reading / draining ----------------------------------------------

    def __len__(self) -> int:
        return len(self._events)

    def events(self, category: str | None = None,
               kind: str | None = None) -> list[Event]:
        """Snapshot of retained events, optionally filtered."""
        return [ev for ev in self._events
                if (category is None or ev.category == category)
                and (kind is None or ev.kind == kind)]

    def categories(self) -> dict[str, int]:
        """Retained event count per category (sorted for stable output)."""
        counts: dict[str, int] = {}
        for ev in self._events:
            counts[ev.category] = counts.get(ev.category, 0) + 1
        return dict(sorted(counts.items()))

    def clear(self) -> None:
        """Drop retained events (counters and the epoch are kept)."""
        self._events.clear()

    def drain(self) -> list[Event]:
        """Return retained events and clear the buffer — the per-run
        isolation primitive (no cross-run leakage when one bus spans
        several ``Program.run`` calls)."""
        out = list(self._events)
        self._events.clear()
        return out

    def prune_trace(self, trace_id) -> int:
        """Drop every retained event of one trace and suppress its late
        arrivals — how tail sampling bounds memory through the ring
        buffer.  Returns the number of events removed (also counted in
        ``pruned``)."""
        keep = [ev for ev in self._events
                if ev.attrs.get("trace_id") != trace_id]
        removed = len(self._events) - len(keep)
        if removed:
            self._events.clear()
            self._events.extend(keep)
            self.pruned += removed
        self._suppressed_traces.add(trace_id)
        return removed

    # -- export ----------------------------------------------------------

    def to_jsonl(self) -> str:
        """The retained events, one JSON object per line (no header)."""
        return "\n".join(ev.to_jsonl() for ev in self._events)

    def header(self) -> dict:
        """The export header record: drop/sampling accounting plus the
        sampling config, so a reader can tell a truncated export (ring
        drops, category sampling, trace pruning) from a quiet one."""
        return {"header": "repro.obs.timeline", "schema": 1,
                "capacity": self.capacity,
                "retained": len(self._events), "emitted": self.emitted,
                "dropped": self.dropped, "sampled_out": self.sampled_out,
                "pruned": self.pruned,
                "sample": dict(sorted(self._sample.items())),
                "tracing": _TRACER is not None}

    def export_jsonl(self, path: str) -> str:
        """Write the JSONL document — one header record, then one event
        per line — and return the path."""
        with open(path, "w") as f:
            f.write(json.dumps(self.header(), sort_keys=True) + "\n")
            body = self.to_jsonl()
            if body:
                f.write(body + "\n")
        return path

    def stats(self) -> dict:
        return {"retained": len(self._events), "emitted": self.emitted,
                "sampled_out": self.sampled_out, "dropped": self.dropped,
                "pruned": self.pruned, "capacity": self.capacity}


# -- the process-wide bus (opt-in singleton) ------------------------------

_CURRENT: Timeline | None = None


def current() -> Timeline | None:
    """The installed bus, or ``None`` (the zero-overhead default)."""
    return _CURRENT


def install(timeline: Timeline | None = None, *, capacity: int = 8192,
            sample: dict[str, int] | None = None) -> Timeline:
    """Install (and return) the process bus; replaces any previous one."""
    global _CURRENT
    _CURRENT = timeline if timeline is not None else Timeline(
        capacity=capacity, sample=sample)
    return _CURRENT


def uninstall() -> Timeline | None:
    """Remove the bus; returns the removed timeline (if any)."""
    global _CURRENT
    tl, _CURRENT = _CURRENT, None
    return tl


@contextmanager
def enabled(timeline: Timeline | None = None, *, capacity: int = 8192,
            sample: dict[str, int] | None = None):
    """Scoped installation: the bus is live inside the ``with`` body and
    the previous state (usually: no bus) is restored after."""
    global _CURRENT
    prev = _CURRENT
    tl = install(timeline, capacity=capacity, sample=sample)
    try:
        yield tl
    finally:
        _CURRENT = prev


def read_jsonl(path: str) -> tuple[dict | None, list[dict]]:
    """Parse an exported timeline file: ``(header, events)``.

    Tolerates header-less exports from older writers (``header`` is then
    ``None``); events are plain dicts in file order.
    """
    header = None
    events: list[dict] = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            doc = json.loads(line)
            if "category" in doc:
                events.append(doc)
            elif doc.get("header") == "repro.obs.timeline":
                header = doc
    return header, events


def emit(category: str, kind: str, name: str, dur_us: float = 0.0,
         **attrs) -> Event | None:
    """Emit onto the installed bus, or do nothing when none is installed.

    Hot sites prefer the inline guard ``tl = current(); if tl is not
    None: tl.emit(...)`` so the disabled path is a single attribute read.
    """
    tl = _CURRENT
    if tl is None:
        return None
    return tl.emit(category, kind, name, dur_us, **attrs)
