"""``repro.obs`` — profiler, structured tracing, and metrics.

The observability layer over the SIMT simulator (see
``docs/observability.md``).  Typical use::

    from repro import acc, obs

    prof = obs.Profiler()
    prog = acc.compile(src, profiler=prof)     # compile-phase spans
    res = prog.run(a=data, profiler=prof)      # kernels + transfers
    print(prof.format_report())                # nvprof-style tables
    open("profile.json", "w").write(prof.to_json())  # chrome://tracing

Everything is opt-in: with no profiler attached, the run path does no
extra work.
"""

from repro.obs import timeline
from repro.obs.attribution import (annotate_kernel, annotate_record,
                                   attribution_rows, record_rows)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiler import Profiler
from repro.obs.record import KernelRecord
from repro.obs.report import format_kernel_table, format_profile
from repro.obs.roofline import Roofline, classify
from repro.obs.slo import (LatencyHistogram, SLOConfig, SLOMonitor,
                           format_slo, quantile)
from repro.obs.timeline import Event, Timeline
from repro.obs.trace import (CounterSample, Span, SpanNode, TailSampler,
                             TraceRecorder, TraceTree, assemble,
                             critical_path, render_tree, tracing,
                             tree_to_chrome, verify_request_traces)

__all__ = [
    "Counter",
    "CounterSample",
    "Event",
    "Gauge",
    "Histogram",
    "KernelRecord",
    "LatencyHistogram",
    "MetricsRegistry",
    "Profiler",
    "Roofline",
    "SLOConfig",
    "SLOMonitor",
    "Span",
    "SpanNode",
    "TailSampler",
    "Timeline",
    "TraceRecorder",
    "TraceTree",
    "annotate_kernel",
    "annotate_record",
    "assemble",
    "attribution_rows",
    "classify",
    "critical_path",
    "format_kernel_table",
    "format_profile",
    "format_slo",
    "quantile",
    "record_rows",
    "render_tree",
    "timeline",
    "tracing",
    "tree_to_chrome",
    "verify_request_traces",
]
