"""``repro.obs`` — profiler, structured tracing, and metrics.

The observability layer over the SIMT simulator (see
``docs/observability.md``).  Typical use::

    from repro import acc, obs

    prof = obs.Profiler()
    prog = acc.compile(src, profiler=prof)     # compile-phase spans
    res = prog.run(a=data, profiler=prof)      # kernels + transfers
    print(prof.format_report())                # nvprof-style tables
    open("profile.json", "w").write(prof.to_json())  # chrome://tracing

Everything is opt-in: with no profiler attached, the run path does no
extra work.
"""

from repro.obs import timeline
from repro.obs.attribution import (annotate_kernel, annotate_record,
                                   attribution_rows, record_rows)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profiler import Profiler
from repro.obs.record import KernelRecord
from repro.obs.report import format_kernel_table, format_profile
from repro.obs.roofline import Roofline, classify
from repro.obs.timeline import Event, Timeline
from repro.obs.trace import CounterSample, Span, TraceRecorder

__all__ = [
    "Counter",
    "CounterSample",
    "Event",
    "Gauge",
    "Histogram",
    "KernelRecord",
    "MetricsRegistry",
    "Profiler",
    "Roofline",
    "Span",
    "Timeline",
    "TraceRecorder",
    "annotate_kernel",
    "annotate_record",
    "attribution_rows",
    "classify",
    "format_kernel_table",
    "format_profile",
    "record_rows",
    "timeline",
]
