"""Roofline-style bottleneck classification of one kernel launch.

The paper's evaluation reasons about *why* a lowering strategy is slow:
strided gang loads burn DRAM segments (memory-bound), shared-memory
log-step trees pay barrier and bank-serialization cost (sync/shared-
bound), device atomics serialize lane by lane (atomic-bound), and tiny
finish kernels are all launch latency.  :func:`classify` turns one
launch's counters and modeled :class:`~repro.gpu.costmodel.TimeBreakdown`
into exactly that verdict.

With a per-statement :class:`~repro.gpu.events.AttributionTable` on the
stats (``attribution=True`` at launch), the verdict is computed from
attributed statement times — which is what separates an atomic update
from the surrounding loads sharing the same ``global_us`` bucket — and
the dominant statement is named.  Without attribution the classifier
falls back to the kernel-level component split (no atomic distinction,
no dominant statement).

The fixed kernel-launch overhead never competes for the verdict (it is a
host-side constant, not a device roofline), but its share is reported so
launch-dominated finish kernels are still visible as such.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.costmodel import LAUNCH_SID, CostModel, TimeBreakdown
from repro.gpu.device import DeviceProperties
from repro.gpu.events import KernelStats, StmtCounters
from repro.gpu.kernelir import Kernel, stmt_text, walk_stmts

__all__ = ["Roofline", "classify", "stmt_category"]

#: verdict labels, in the order ties resolve (first wins)
VERDICTS = ("memory-bound", "atomic-bound", "sync-bound", "shared-bound",
            "latency-bound")

#: attributed-time category → verdict label
_CATEGORY_VERDICT = {
    "memory": "memory-bound",
    "atomic": "atomic-bound",
    "sync": "sync-bound",
    "shared": "shared-bound",
    "compute": "latency-bound",
}


def stmt_category(row: StmtCounters) -> str:
    """The cost category of one attribution row.

    A row belongs to exactly one statement, so the categories cannot mix:
    atomic updates are the only rows with serialization rounds, barriers
    the only ones with arrivals, and so on down to pure-compute rows.
    """
    if row.atomic_rounds > 0:
        return "atomic"
    if row.barrier_arrivals > 0:
        return "sync"
    if row.shared_accesses > 0:
        return "shared"
    if row.global_transactions + row.l2_transactions > 0:
        return "memory"
    return "compute"


@dataclass
class Roofline:
    """One launch's bottleneck verdict and the evidence behind it."""

    verdict: str
    total_us: float
    launch_us: float
    #: category → attributed µs (from statement rows when available,
    #: else the kernel-level component split)
    category_us: dict = field(default_factory=dict)
    #: True when the DRAM bandwidth floor, not per-access latency,
    #: bounds the busy time (forces ``memory-bound``)
    bandwidth_limited: bool = False
    dominant_sid: int | None = None
    dominant_text: str | None = None
    dominant_us: float | None = None

    @property
    def launch_share(self) -> float:
        return self.launch_us / self.total_us if self.total_us > 0 else 0.0

    def to_dict(self) -> dict:
        return {
            "verdict": self.verdict,
            "total_us": self.total_us,
            "launch_us": self.launch_us,
            "launch_share": self.launch_share,
            "bandwidth_limited": self.bandwidth_limited,
            "category_us": dict(self.category_us),
            "dominant_sid": self.dominant_sid,
            "dominant_text": self.dominant_text,
            "dominant_us": self.dominant_us,
        }


def _sid_texts(kernel: Kernel | None) -> dict[int, str]:
    if kernel is None:
        return {}
    return {s.sid: stmt_text(s) for s, _ in walk_stmts(kernel.body)
            if s.sid >= 0}


def classify(stats: KernelStats, timing: TimeBreakdown,
             device: DeviceProperties,
             kernel: Kernel | None = None) -> Roofline:
    """Classify one launch on the roofline (see module docstring).

    ``kernel`` (the IR) is only used to render the dominant statement's
    text; the verdict is pure counters + timing.
    """
    busy = (timing.compute_us + timing.global_us + timing.shared_us
            + timing.sync_us)
    bandwidth_limited = timing.bandwidth_floor_us > busy > 0

    if stats.attribution is None:
        category_us = {
            "compute": timing.compute_us,
            "memory": timing.global_us,
            "shared": timing.shared_us,
            "sync": timing.sync_us,
        }
        dominant_sid = dominant_text = dominant_us = None
    else:
        times = CostModel(device).stmt_times(stats)
        rows = stats.attribution.rows
        category_us: dict[str, float] = {}
        dominant_sid, dominant_us = None, 0.0
        for sid, us in times.items():
            if sid == LAUNCH_SID:
                continue
            cat = stmt_category(rows[sid])
            category_us[cat] = category_us.get(cat, 0.0) + us
            if dominant_sid is None or us > dominant_us:
                dominant_sid, dominant_us = sid, us
        dominant_text = _sid_texts(kernel).get(dominant_sid)
        if dominant_sid is None:
            dominant_us = None

    if bandwidth_limited:
        verdict = "memory-bound"
    elif any(category_us.values()):
        # sync and shared trees are two faces of the same machinery
        # (the log-step reduction); they compete for dominance jointly
        # and the larger face names the verdict
        joint = dict(category_us)
        tree = joint.pop("sync", 0.0) + joint.pop("shared", 0.0)
        if tree >= max(joint.values(), default=0.0) and tree > 0:
            verdict = ("sync-bound"
                       if category_us.get("sync", 0.0)
                       >= category_us.get("shared", 0.0)
                       else "shared-bound")
        else:
            best = max(joint, key=joint.get)
            verdict = _CATEGORY_VERDICT[best]
    else:
        verdict = "latency-bound"  # nothing executed: pure launch cost

    return Roofline(verdict=verdict, total_us=timing.total_us,
                    launch_us=timing.launch_us, category_us=category_us,
                    bandwidth_limited=bandwidth_limited,
                    dominant_sid=dominant_sid, dominant_text=dominant_text,
                    dominant_us=dominant_us)
