"""Lightweight metrics registry: counters, gauges, histograms.

The profiler, the bench harnesses, and the testsuite runner all feed one
:class:`MetricsRegistry`, so machine-readable run profiles can report
"how many kernels launched / cases passed / bytes moved" without each
subsystem inventing its own ad-hoc tally.  The instruments are the three
conventional ones:

* :class:`Counter` — a monotonically increasing total;
* :class:`Gauge` — a last-write-wins sample;
* :class:`Histogram` — a streaming summary (count / sum / min / max) of
  observed values, without bucket storage (a full per-observation record
  is the trace recorder's job, not the metrics layer's).

Names are dotted strings (``"profiler.kernel_launches"``); registries
create instruments on first use and re-return the same instance after, so
repeated launches accumulate into one series.

Instruments are thread-safe: each read-modify-write (``inc``,
``observe``) holds a per-instrument lock, and instrument creation holds a
registry lock, so concurrent emitters (the telemetry bus's contract —
see :mod:`repro.obs.timeline`) never lose updates.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["Counter", "Gauge", "Histogram", "INSTRUMENT_ALIASES",
           "MetricsRegistry"]

#: migration shim for renamed instruments.  The serve layer's latency
#: histograms moved into the ``serve.latency.*`` namespace so they can
#: never collide with testsuite-runner histograms sharing a registry;
#: the old name keeps resolving to the same instrument so dashboards
#: and callers migrate at their own pace.
INSTRUMENT_ALIASES = {
    "serve.latency_us": "serve.latency.all_us",
}


def _lock_field():
    return field(default_factory=threading.Lock, repr=False, compare=False)


@dataclass
class Counter:
    """Monotonic total; ``inc`` by any non-negative amount."""

    name: str
    value: float = 0.0
    _lock: threading.Lock = _lock_field()

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease "
                             f"(inc by {amount})")
        with self._lock:
            self.value += amount


@dataclass
class Gauge:
    """Last-observed value (e.g. occupancy of the most recent launch)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """Streaming summary of observations (no per-value storage)."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float | None = None
    max: float | None = None
    _lock: threading.Lock = _lock_field()

    def observe(self, value: float) -> None:
        v = float(value)
        with self._lock:
            self.count += 1
            self.total += v
            self.min = v if self.min is None else min(self.min, v)
            self.max = v if self.max is None else max(self.max, v)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class MetricsRegistry:
    """Create-on-first-use instrument store shared by one profiling run."""

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, Histogram] = field(default_factory=dict)
    _lock: threading.Lock = _lock_field()

    def counter(self, name: str) -> Counter:
        name = INSTRUMENT_ALIASES.get(name, name)
        with self._lock:
            if name not in self.counters:
                self.counters[name] = Counter(name)
            return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        name = INSTRUMENT_ALIASES.get(name, name)
        with self._lock:
            if name not in self.gauges:
                self.gauges[name] = Gauge(name)
            return self.gauges[name]

    def histogram(self, name: str) -> Histogram:
        name = INSTRUMENT_ALIASES.get(name, name)
        with self._lock:
            if name not in self.histograms:
                self.histograms[name] = Histogram(name)
            return self.histograms[name]

    def reset(self) -> None:
        """Drop every instrument — the between-runs isolation primitive.

        Callers that reuse one registry (or profiler) across logically
        separate ``Program.run`` calls reset it so the next run's
        snapshot carries no cross-run leakage."""
        with self._lock:
            self.counters.clear()
            self.gauges.clear()
            self.histograms.clear()

    def to_dict(self) -> dict:
        """JSON-ready snapshot (stable key order for golden tests)."""
        return {
            "counters": {n: c.value
                         for n, c in sorted(self.counters.items())},
            "gauges": {n: g.value for n, g in sorted(self.gauges.items())},
            "histograms": {
                n: {"count": h.count, "total": h.total,
                    "mean": h.mean, "min": h.min, "max": h.max}
                for n, h in sorted(self.histograms.items())
            },
        }

    def format(self) -> str:
        """Aligned text rendering for the profile report."""
        lines: list[str] = []
        for n, c in sorted(self.counters.items()):
            lines.append(f"  {n:<44s} {c.value:>14g}")
        for n, g in sorted(self.gauges.items()):
            lines.append(f"  {n:<44s} {g.value:>14g}")
        for n, h in sorted(self.histograms.items()):
            lines.append(f"  {n:<44s} n={h.count} mean={h.mean:g} "
                         f"min={h.min:g} max={h.max:g}")
        return "\n".join(lines)
