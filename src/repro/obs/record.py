"""Per-launch profiler records and their derived metrics.

A :class:`KernelRecord` snapshots everything one kernel launch produced —
the aggregate :class:`~repro.gpu.events.KernelStats` counters, the
modeled :class:`~repro.gpu.costmodel.TimeBreakdown`, the launch
configuration, and the lowering strategy that generated the kernel — and
derives the nvprof-style efficiency metrics the paper's evaluation
reasons in:

``occupancy``
    Resident warps per SM over the device's warp capacity, from the same
    :meth:`~repro.gpu.device.DeviceProperties.concurrent_blocks`
    calculation the cost model uses.
``coalescing_efficiency``
    Useful bytes moved over DRAM segment bytes fetched
    (``global_bytes / dram_bytes``).  1.0 means every fetched byte was
    requested; window-sliding vecsum sits at 1.0, blocking-scheduled
    strided access far below.  May exceed 1.0 when broadcasts serve many
    lanes from one segment.
``bank_conflict_degree``
    Average serialization of shared-memory warp accesses
    (``shared_accesses / conflict-free accesses``); 1.0 = conflict-free.
``divergence_rate``
    Divergent branches per warp-instruction slot.
``l2_hit_rate``
    Warp requests served by the L2 over all global warp requests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.costmodel import TimeBreakdown
from repro.gpu.device import DeviceProperties
from repro.gpu.events import KernelStats
from repro.gpu.kernelir import Kernel

__all__ = ["KernelRecord"]


@dataclass
class KernelRecord:
    """Everything the profiler keeps about one kernel launch."""

    name: str
    stats: KernelStats
    timing: TimeBreakdown
    grid_dim: int
    block_dim: tuple[int, int]
    device: DeviceProperties
    compiler: str | None = None  # profile name, when launched via acc
    strategy: dict = field(default_factory=dict)  # lowering options used
    launch_index: int = 0  # position in the profiling session
    executor: str = "batched"  # executor mode that ran the launch
    kernel: Kernel | None = None  # IR, when the launch site had it handy

    # -- derived metrics ---------------------------------------------------

    @property
    def threads_per_block(self) -> int:
        return self.block_dim[0] * self.block_dim[1]

    @property
    def occupancy(self) -> float:
        """Resident warps per SM / device warp capacity, in (0, 1]."""
        d = self.device
        tpb = max(1, self.threads_per_block)
        warps_per_block = -(-tpb // d.warp_size)
        resident = d.concurrent_blocks(tpb, self.stats.shared_bytes)
        per_sm_blocks = min(resident // d.usable_sms,
                            max(1, self.grid_dim))
        return min(1.0, (per_sm_blocks * warps_per_block)
                   / d.max_warps_per_sm)

    @property
    def coalescing_efficiency(self) -> float:
        """Useful bytes / DRAM segment bytes (1.0 = perfectly coalesced)."""
        if self.stats.dram_bytes == 0:
            return 1.0
        return self.stats.global_bytes / self.stats.dram_bytes

    @property
    def bank_conflict_degree(self) -> float:
        """Mean shared-access serialization degree (1.0 = conflict-free)."""
        free = self.stats.shared_accesses - self.stats.bank_conflict_extra
        if free <= 0:
            return 1.0
        return self.stats.shared_accesses / free

    @property
    def divergence_rate(self) -> float:
        """Divergent branches per warp-instruction slot."""
        if self.stats.warp_inst_slots == 0:
            return 0.0
        return self.stats.divergent_branches / self.stats.warp_inst_slots

    @property
    def l2_hit_rate(self) -> float:
        """Global warp requests served by the L2 instead of DRAM."""
        total = self.stats.global_transactions + self.stats.l2_transactions
        if total == 0:
            return 0.0
        return self.stats.l2_transactions / total

    @property
    def modeled_us(self) -> float:
        return self.timing.total_us

    # -- export ------------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-ready snapshot (consumed by the bench profile sink)."""
        s, t = self.stats, self.timing
        out = {
            "kernel": self.name,
            "launch_index": self.launch_index,
            "compiler": self.compiler,
            "executor": self.executor,
            "strategy": dict(self.strategy),
            "grid_dim": self.grid_dim,
            "block_dim": list(self.block_dim),
            "shared_bytes": s.shared_bytes,
            "counters": {
                "warp_inst_slots": s.warp_inst_slots,
                "global_transactions": s.global_transactions,
                "l2_transactions": s.l2_transactions,
                "global_bytes": s.global_bytes,
                "dram_bytes": s.dram_bytes,
                "shared_accesses": s.shared_accesses,
                "bank_conflict_extra": s.bank_conflict_extra,
                "barriers": s.barriers,
                "divergent_branches": s.divergent_branches,
                "trace_events": len(s.trace),
            },
            "timing_us": {
                "total": t.total_us,
                "launch": t.launch_us,
                "compute": t.compute_us,
                "global": t.global_us,
                "shared": t.shared_us,
                "sync": t.sync_us,
                "bandwidth_floor": t.bandwidth_floor_us,
                "concurrency": t.concurrency,
            },
            "derived": {
                "occupancy": self.occupancy,
                "coalescing_efficiency": self.coalescing_efficiency,
                "bank_conflict_degree": self.bank_conflict_degree,
                "divergence_rate": self.divergence_rate,
                "l2_hit_rate": self.l2_hit_rate,
            },
        }
        if s.attribution is not None:
            out["attribution"] = s.attribution.as_dict()
            out["roofline"] = self.roofline().to_dict()
        return out

    def roofline(self):
        """Classify this launch on the roofline (lazy import: the
        classifier lives one layer up, in :mod:`repro.obs.roofline`)."""
        from repro.obs.roofline import classify
        return classify(self.stats, self.timing, self.device,
                        kernel=self.kernel)
