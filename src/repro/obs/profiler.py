"""The profiler: one object the whole pipeline reports into.

A :class:`Profiler` is handed to ``acc.compile(..., profiler=...)`` and
``Program.run(profiler=...)`` (or to the raw
:func:`repro.gpu.launch.launch`); the compile pipeline, the data
environment, and the launch path then report into it:

* compile phases  → wall-time spans on the ``host`` track;
* h2d/d2h copies  → modeled-time ``transfer`` spans + byte counters;
* kernel launches → a :class:`~repro.obs.record.KernelRecord` (counters,
  time breakdown, launch config, strategy) + a ``kernel`` span;
* reduction finalization (finish kernel + result read-back) → an
  enclosing ``reduction`` span.

Profiling is strictly opt-in: every hook site is ``if profiler is not
None``-guarded, and with no profiler the run path allocates nothing —
the acceptance bar is *zero* overhead when disabled.  Per-access
:class:`~repro.gpu.events.TraceEvent` collection is a separate, also
opt-in knob (``trace=True`` on the same calls) because it records one
event per memory statement execution; when both are on, the profiler
folds the structured trace into per-kind counters instead of printing.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field

from repro.gpu.costmodel import TimeBreakdown
from repro.gpu.device import DeviceProperties
from repro.gpu.events import KernelStats
from repro.obs.metrics import MetricsRegistry
from repro.obs.record import KernelRecord
from repro.obs.trace import TraceRecorder

__all__ = ["Profiler"]


@dataclass
class Profiler:
    """Collects kernel records, trace spans, and metrics for one session.

    One profiler may span many ``Program.run`` calls (iterative apps,
    bench sweeps); records and metrics accumulate.
    """

    trace: TraceRecorder = field(default_factory=TraceRecorder)
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)
    kernels: list[KernelRecord] = field(default_factory=list)

    # -- hooks (called by the runtime / launch path) -----------------------

    def record_kernel(self, name: str, stats: KernelStats,
                      timing: TimeBreakdown, *, grid_dim: int,
                      block_dim: tuple[int, int],
                      device: DeviceProperties,
                      compiler: str | None = None,
                      strategy: dict | None = None,
                      executor: str = "batched",
                      kernel=None) -> KernelRecord:
        """Snapshot one kernel launch; returns the new record.

        ``kernel`` (the :class:`~repro.gpu.kernelir.Kernel` IR, when the
        launch site has it) enables the per-statement views: annotated
        listings and the roofline's dominant-statement naming."""
        rec = KernelRecord(
            name=name, stats=stats, timing=timing, grid_dim=grid_dim,
            block_dim=block_dim, device=device, compiler=compiler,
            strategy=dict(strategy or {}), launch_index=len(self.kernels),
            executor=executor, kernel=kernel,
        )
        self.kernels.append(rec)
        self.trace.add(name, "kernel", timing.total_us,
                       grid=grid_dim, block=list(block_dim),
                       gtx=stats.global_transactions,
                       barriers=stats.barriers)
        if stats.attribution is not None:
            rows = sorted(stats.attribution.rows.items())
            self.trace.counter(
                f"{name}.stmt_gtx",
                {f"s{sid}": r.global_transactions for sid, r in rows})
            self.trace.counter(
                f"{name}.stmt_slots",
                {f"s{sid}": r.warp_slots for sid, r in rows})
            self.metrics.counter("profiler.attributed_launches").inc()
        m = self.metrics
        m.counter("profiler.kernel_launches").inc()
        m.counter("profiler.warp_inst_slots").inc(stats.warp_inst_slots)
        m.counter("profiler.global_transactions").inc(
            stats.global_transactions)
        m.counter("profiler.dram_bytes").inc(stats.dram_bytes)
        m.counter("profiler.barriers").inc(stats.barriers)
        m.histogram("profiler.kernel_us").observe(timing.total_us)
        m.gauge("profiler.last_occupancy").set(rec.occupancy)
        # fold the opt-in structured trace into per-kind counters
        for ev in stats.trace:
            m.counter(f"profiler.trace_events.{ev.kind}").inc()
        return rec

    def record_transfer(self, label: str, us: float, nbytes: int,
                        direction: str) -> None:
        """One modeled host↔device copy (direction: ``h2d`` | ``d2h``)."""
        self.trace.add(label, "transfer", us,
                       bytes=nbytes, direction=direction)
        self.metrics.counter(f"profiler.{direction}_bytes").inc(nbytes)
        self.metrics.counter("profiler.transfers").inc()

    def record_fault(self, site: str, kind: str) -> None:
        """One injected fault (see :mod:`repro.faults`): a zero-duration
        trace marker plus per-kind counters, so campaigns show up in the
        same timeline as the kernels they perturb."""
        self.trace.add(f"fault:{site}", "fault", 0.0, kind=kind)
        self.metrics.counter("faults.injected").inc()
        self.metrics.counter(f"faults.injected.{kind}").inc()

    @contextmanager
    def phase(self, name: str, cat: str = "compile", **args):
        """Wall-time span on the host track (compile pipeline phases)."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.trace.add(name, cat, (time.perf_counter() - t0) * 1e6,
                           track="host", **args)

    def region(self, name: str, cat: str = "region", **args):
        """Enclosing modeled-time span (e.g. one ``Program.run``)."""
        return self.trace.region(name, cat, **args)

    # -- export ------------------------------------------------------------

    @property
    def modeled_us(self) -> float:
        """Device-track time accumulated so far."""
        return self.trace.now("device")

    def kernels_named(self, name: str) -> list[KernelRecord]:
        return [k for k in self.kernels if k.name == name]

    def to_dict(self, truncated_by: BaseException | None = None) -> dict:
        """Chrome-trace-loadable document with the profile embedded.

        The ``traceEvents`` / ``displayTimeUnit`` keys make the file load
        in ``chrome://tracing``; the extra top-level keys (``kernels``,
        ``metrics``) are ignored by trace viewers and carry the full
        machine-readable profile for tooling.

        ``truncated_by`` marks a document flushed on the error path: the
        run died mid-flight, so the trace covers only what executed.  The
        partial profile still loads in ``chrome://tracing`` and shows how
        far execution got before the failure.
        """
        doc = self.trace.to_chrome()
        doc["kernels"] = [k.to_dict() for k in self.kernels]
        doc["metrics"] = self.metrics.to_dict()
        if truncated_by is not None:
            doc["truncated"] = True
            doc["truncated_by"] = {
                "error": type(truncated_by).__name__,
                "message": str(truncated_by),
            }
        return doc

    def to_json(self, indent: int | None = None,
                truncated_by: BaseException | None = None) -> str:
        return json.dumps(self.to_dict(truncated_by=truncated_by),
                          indent=indent)

    def format_report(self) -> str:
        """The plain-text per-kernel report (see :mod:`repro.obs.report`)."""
        from repro.obs.report import format_profile
        return format_profile(self)
