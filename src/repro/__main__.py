"""Compiler driver CLI.

Usage examples::

    # inspect the compilation pipeline of an OpenACC source file;
    # --dump-ir prints each pass's before/after IR listings
    python -m repro compile examples/programs/vecsum.c --dump-ir \\
        --dump-plan --dump-kernels

    # per-pass timing/notes and the autotuner's cost-model decisions;
    # --ir adds before/after diffs for every pass that changed the IR
    python -m repro explain examples/programs/vecsum.c
    python -m repro explain examples/programs/vecsum.c --ir \\
        --pipeline optimized

    # compile and run, synthesizing input data
    python -m repro run examples/programs/vecsum.c \\
        --array "a=arange:1024:float" --compiler vendor-b

    # nvprof-style per-kernel profile (arrays synthesized automatically);
    # --json writes a chrome://tracing-loadable profile document and
    # --lines adds per-statement attribution + annotated listings
    python -m repro profile examples/programs/vecsum.c
    python -m repro profile examples/programs/vecsum.c --json profile.json
    python -m repro profile examples/programs/vecsum.c --lines

    # annotated kernel listings only (per-line %time / transactions /
    # conflicts gutters + roofline verdict); --json dumps the rows
    python -m repro annotate examples/programs/vecsum.c
    python -m repro annotate examples/programs/vecsum.c --json -

    # seeded fault-injection campaign; exit 1 if any fault escapes
    python -m repro faultcheck examples/programs/vecsum.c --seed 0 \\
        --campaign 50

    # regenerate the paper's artifacts
    python -m repro table2 --quick
    python -m repro fig11 --quick
    python -m repro fig12 --quick
    python -m repro ablations --quick

Array specs for ``run``: ``NAME=KIND:SHAPE:CTYPE`` where KIND is ``zeros``,
``ones``, ``arange`` or ``rand`` and SHAPE is ``x``-separated (e.g.
``input=rand:4x8x32:float``), or ``NAME=path/to/file.npy``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import acc
from repro.dtypes import ctype_to_dtype
from repro.errors import ReproError

__all__ = ["main"]


def _parse_array_spec(spec: str) -> tuple[str, np.ndarray]:
    if "=" not in spec:
        raise SystemExit(f"bad --array spec {spec!r} (need NAME=...)")
    name, rhs = spec.split("=", 1)
    if rhs.endswith(".npy"):
        return name, np.load(rhs)
    parts = rhs.split(":")
    if len(parts) != 3:
        raise SystemExit(
            f"bad --array spec {spec!r} (need KIND:SHAPE:CTYPE or *.npy)")
    kind, shape_s, ctype = parts
    shape = tuple(int(x) for x in shape_s.split("x"))
    dt = ctype_to_dtype(ctype).np
    n = int(np.prod(shape))
    if kind == "zeros":
        arr = np.zeros(n, dtype=dt)
    elif kind == "ones":
        arr = np.ones(n, dtype=dt)
    elif kind == "arange":
        arr = np.arange(n).astype(dt)
    elif kind == "rand":
        arr = (np.random.default_rng(0).random(n) * 8).astype(dt)
    else:
        raise SystemExit(f"unknown array kind {kind!r}")
    return name, arr.reshape(shape)


def _render_pass_table(prog) -> str:
    """One line per pass: changed-marker, name, kind, wall time, note."""
    lines = [f"pipeline {prog.pipeline!r}"]
    for rec in prog.pass_records:
        mark = "*" if rec.changed else " "
        note = f"  {rec.note}" if rec.note else ""
        lines.append(f"  {mark} {rec.name:<18} {rec.kind:<9} "
                     f"{rec.wall_ms:7.2f} ms{note}")
    if any(r.changed for r in prog.pass_records):
        lines.append("  (* = pass changed the IR listing)")
    return "\n".join(lines)


def _render_pass_ir(prog) -> str:
    """Before/after listings for every pass that changed the IR.

    A listing a pass introduces (the region after build-ir, the kernels
    after lowering) prints in full; a listing a pass rewrote prints as a
    unified diff so barrier elimination or fusion reads at a glance.
    """
    import difflib
    out = []
    for rec in prog.pass_records:
        if not rec.changed:
            continue
        out.append(f"== pass {rec.name} " + "=" * max(1, 56 - len(rec.name)))
        for nm in sorted(set(rec.before) | set(rec.after)):
            before, after = rec.before.get(nm), rec.after.get(nm)
            if before == after:
                continue
            if before is None:
                out.append(f"-- {nm} (new)")
                out.append(after.rstrip())
            elif after is None:
                out.append(f"-- {nm} (removed)")
            else:
                out.append("\n".join(difflib.unified_diff(
                    before.splitlines(), after.splitlines(),
                    fromfile=f"{nm} before {rec.name}",
                    tofile=f"{nm} after {rec.name}", lineterm="")))
        out.append("")
    return "\n".join(out).rstrip()


def _render_autotune(prog) -> str:
    if not prog.autotune:
        return ("autotune: no decisions (pass not in this pipeline, or no "
                "tunable reductions)")
    lines = ["autotune decisions:"]
    for var, rec in sorted(prog.autotune.items()):
        if "skipped" in rec:
            lines.append(f"  {var}: skipped -- {rec['skipped']}")
            continue
        for fld, dec in sorted(rec.items()):
            est = ", ".join(f"{c}={us:.3f}us" for c, us
                            in dec["estimates_us"].items())
            tag = ("" if dec["choice"] == dec["default"]
                   else f"  (profile default: {dec['default']})")
            lines.append(f"  {var}.{fld} = {dec['choice']}{tag}")
            lines.append(f"    modeled: {est}")
    return "\n".join(lines)


def _compile_from_args(args, *, capture_ir=False, profiler=None):
    source = open(args.file).read()
    return acc.compile(source, compiler=args.compiler,
                       num_gangs=args.num_gangs,
                       num_workers=args.num_workers,
                       vector_length=args.vector_length,
                       pipeline=args.pipeline, capture_ir=capture_ir,
                       profiler=profiler)


def _cmd_compile(args) -> int:
    from repro.ir.pprint import format_plan

    prog = _compile_from_args(args, capture_ir=args.dump_ir)
    geom = prog.lowered.geometry
    if args.dump_ir:
        print(_render_pass_table(prog))
        dumps = _render_pass_ir(prog)
        if dumps:
            print()
            print(dumps)
        print()
    if args.dump_plan:
        print(format_plan(prog.lowered.plan))
        print()
    print(f"compiled with profile {prog.profile.name!r} "
          f"(pipeline {prog.pipeline!r}): "
          f"{len(prog.lowered.kernels)} kernel(s), geometry "
          f"{geom.num_gangs}x{geom.num_workers}x{geom.vector_length}")
    if args.dump_kernels:
        print()
        print(prog.dump_kernels())
    return 0


def _cmd_explain(args) -> int:
    prog = _compile_from_args(args, capture_ir=True)
    geom = prog.lowered.geometry
    print(f"profile {prog.profile.name!r}, geometry "
          f"{geom.num_gangs}x{geom.num_workers}x{geom.vector_length}, "
          f"{len(prog.lowered.kernels)} kernel(s): "
          f"{', '.join(k.name for k in prog.lowered.kernels)}")
    print()
    print(_render_pass_table(prog))
    print()
    print(_render_autotune(prog))
    if args.ir:
        dumps = _render_pass_ir(prog)
        if dumps:
            print()
            print(dumps)
    return 0


def _parse_run_inputs(args) -> dict:
    kwargs: dict = {}
    for spec in args.array or []:
        name, arr = _parse_array_spec(spec)
        kwargs[name] = arr
    for spec in args.scalar or []:
        name, val = spec.split("=", 1)
        kwargs[name] = float(val) if "." in val else int(val)
    return kwargs


def _timeline_scope(args):
    """``--timeline PATH`` / ``--trace-requests``: an installed bus (and,
    for request tracing, a tracer) scoped to the command's duration."""
    import contextlib

    from repro.obs import timeline as tl
    want_bus = bool(getattr(args, "timeline", None))
    want_trace = bool(getattr(args, "trace_requests", False))
    if not (want_bus or want_trace):
        return contextlib.nullcontext()
    stack = contextlib.ExitStack()
    stack.enter_context(tl.enabled())
    if want_trace:
        from repro.obs import trace as _trace
        stack.enter_context(_trace.tracing())
    return stack


def _export_timeline(args, bus) -> None:
    if getattr(args, "timeline", None) and bus is not None:
        from repro.obs import timeline as tl
        if args.timeline == "-":
            sys.stdout.write(bus.to_jsonl())
        else:
            bus.export_jsonl(args.timeline)
            st = bus.stats()
            print(f"timeline: {st['emitted']} event(s) "
                  f"({st['dropped']} dropped) written to {args.timeline}",
                  file=sys.stderr)


def _cmd_run(args) -> int:
    from repro.obs import timeline as _tl

    profiler = None
    if args.profile:
        from repro.obs import Profiler
        profiler = Profiler()
    with _timeline_scope(args):
        prog = _compile_from_args(args, profiler=profiler)
        kwargs = _parse_run_inputs(args)
        res = prog.run(profiler=profiler, **kwargs)
        _export_timeline(args, _tl.current())
    for name, value in res.scalars.items():
        print(f"scalar {name} = {value}")
    for name, arr in res.outputs.items():
        flat = arr.ravel()
        head = ", ".join(f"{v}" for v in flat[:6])
        print(f"array  {name}: shape {arr.shape}, [{head}"
              f"{', ...' if flat.size > 6 else ''}]")
        if args.save:
            np.save(f"{name}.npy", arr)
            print(f"       saved to {name}.npy")
    print(f"modeled: {res.modeled_ms:.3f} ms total "
          f"({res.kernel_ms:.3f} ms kernels)")
    if profiler is not None:
        from repro.obs.report import format_profile
        print()
        print(format_profile(profiler, ledger=res.ledger))
    return 0


def _write_profile_json(args, profiler, *, report_to,
                        truncated_by: BaseException | None = None) -> None:
    """Write ``--json`` profile output; used on both success and failure.

    When a run dies mid-flight the partial trace is still worth having —
    it shows exactly how far execution got — so the error path writes
    whatever was captured and stamps the document ``truncated``.
    """
    if not args.json:
        return
    doc = profiler.to_json(indent=2, truncated_by=truncated_by)
    if args.json == "-":
        print(doc)
        return
    with open(args.json, "w") as f:
        f.write(doc)
    suffix = (" (truncated: run failed mid-flight)" if truncated_by
              else "")
    print(f"profile written to {args.json}{suffix}", file=report_to)


def _cmd_profile(args) -> int:
    from repro.faults.campaign import synthesize_inputs
    from repro.obs import Profiler
    from repro.obs import timeline as _tl
    from repro.obs.report import format_profile

    profiler = Profiler()
    # with --json - the profile document owns stdout; report goes to stderr
    report_to = sys.stderr if args.json == "-" else sys.stdout
    with _timeline_scope(args):
        prog = _compile_from_args(args, profiler=profiler)
        kwargs = _parse_run_inputs(args)
        synthesize_inputs(prog, kwargs, args.size)
        res = None
        try:
            for _ in range(max(1, args.runs)):
                res = prog.run(profiler=profiler, trace=args.trace,
                               attribution=args.lines, **kwargs)
        except ReproError as exc:
            # flush the partial trace before the error surfaces: a failed
            # run is precisely when the profile is most wanted
            _write_profile_json(args, profiler, report_to=report_to,
                                truncated_by=exc)
            _export_timeline(args, _tl.current())
            raise
        _export_timeline(args, _tl.current())

    for name, value in res.scalars.items():
        print(f"scalar {name} = {value}", file=report_to)
    print(format_profile(profiler, ledger=res.ledger), file=report_to)
    _write_profile_json(args, profiler, report_to=report_to)
    return 0


def _cmd_annotate(args) -> int:
    from repro.faults.campaign import synthesize_inputs
    from repro.obs import Profiler, annotate_record, record_rows
    from repro.obs.report import _first_attributed

    profiler = Profiler()
    prog = _compile_from_args(args)
    kwargs = _parse_run_inputs(args)
    synthesize_inputs(prog, kwargs, args.size)
    prog.run(profiler=profiler, attribution=True, **kwargs)

    records = _first_attributed(profiler.kernels)
    # with --json - the rows document owns stdout; listing goes to stderr
    report_to = sys.stderr if args.json == "-" else sys.stdout
    print("\n\n".join(annotate_record(r) for r in records), file=report_to)
    if args.json:
        import json
        doc = json.dumps({"kernels": [
            {"kernel": r.name,
             "executor": r.executor,
             "roofline": r.roofline().to_dict(),
             "statements": record_rows(r)}
            for r in records]}, indent=2)
        if args.json == "-":
            print(doc)
        else:
            with open(args.json, "w") as f:
                f.write(doc + "\n")
            print(f"attribution written to {args.json}", file=report_to)
    return 0


def _cmd_faultcheck(args) -> int:
    from repro.faults import run_campaign
    from repro.obs import timeline as _tl

    source = open(args.file).read()
    # modest default geometry: a fault campaign runs the program hundreds
    # of times (trials × voting replicas), so the full paper geometry
    # (192×8×128) would be needlessly slow for a robustness check
    num_gangs = args.num_gangs if args.num_gangs is not None else 8
    num_workers = args.num_workers if args.num_workers is not None else 2
    vector_length = (args.vector_length if args.vector_length is not None
                     else 32)
    detect = not args.no_detect
    with _timeline_scope(args):
        result = run_campaign(source, seed=args.seed, trials=args.campaign,
                              compiler=args.compiler, num_gangs=num_gangs,
                              num_workers=num_workers,
                              vector_length=vector_length, detect=detect,
                              size=args.size,
                              watchdog_budget=args.watchdog_budget,
                              pipeline=args.pipeline)
        _export_timeline(args, _tl.current())
    if args.json:
        import json
        doc = json.dumps(result.to_dict(), indent=2)
        if args.json == "-":
            print(doc)
        else:
            with open(args.json, "w") as f:
                f.write(doc + "\n")
            print(f"campaign written to {args.json}", file=sys.stderr)
    if args.json != "-":
        print(result.table())
    if detect and result.escaped:
        # per-kind gate: name every kind that escaped, so a regression in
        # one hardening path is attributable straight from the CI log
        for kind, n in sorted(result.escaped_by_kind.items()):
            print(f"FAIL: {n} {kind} fault(s) escaped with detection on",
                  file=sys.stderr)
        return 1
    return 0


def _serve_config_from_args(args):
    from repro.serve import ServeConfig
    return ServeConfig(
        queue_depth=args.queue_depth,
        default_deadline_s=args.deadline,
        hedge_after_s=args.hedge_after,
        max_tries=args.max_tries,
        runs=args.runs, max_attempts=args.max_attempts,
        degrade=args.degrade,
        watchdog_budget=args.watchdog_budget,
        slo=dict(objective_ms=args.slo_objective_ms,
                 target=args.slo_target))


def _write_json(doc: dict, path: str | None, label: str) -> None:
    if not path:
        return
    import json
    text = json.dumps(doc, indent=2, default=str)
    if path == "-":
        print(text)
    else:
        with open(path, "w") as f:
            f.write(text + "\n")
        print(f"{label} written to {path}", file=sys.stderr)


def _cmd_serve(args) -> int:
    """JSONL request/response service over a device pool.

    Each input line is one request object: ``{"id": ..., "source": ...
    or "file": ..., "arrays": {NAME: SPEC}, "scalars": {...},
    "priority": 0|1, "deadline_s": ...}`` (array SPECs use the same
    ``KIND:SHAPE:CTYPE`` / ``*.npy`` forms as ``run --array``).  One
    JSON verdict is written per line, in completion order.
    """
    import asyncio
    import json as _json

    from repro.obs import timeline as _tl
    from repro.serve import (CompileCache, ComputeRequest, DevicePool,
                             Scheduler)

    cfg = _serve_config_from_args(args)
    cache = CompileCache(args.cache_dir) if args.cache_dir else None
    out = sys.stdout if args.output == "-" else open(args.output, "w")

    def to_request(i, doc):
        source = doc.get("source")
        if source is None:
            source = open(doc["file"]).read()
        arrays = {}
        for name, spec in (doc.get("arrays") or {}).items():
            _, arr = _parse_array_spec(f"{name}={spec}")
            arrays[name] = arr
        return ComputeRequest(
            id=str(doc.get("id", f"req-{i:04d}")), source=source,
            compiler=doc.get("compiler", "openuh"),
            pipeline=doc.get("pipeline"),
            num_gangs=doc.get("num_gangs"),
            num_workers=doc.get("num_workers"),
            vector_length=doc.get("vector_length"),
            arrays=arrays, scalars=doc.get("scalars") or {},
            priority=int(doc.get("priority", 1)),
            deadline_s=doc.get("deadline_s"),
            run_opts=doc.get("run_opts") or {})

    async def _serve():
        requests = []
        with (sys.stdin if args.requests == "-"
              else open(args.requests)) as f:
            for i, line in enumerate(f):
                line = line.strip()
                if line:
                    requests.append(to_request(i, _json.loads(line)))
        async with Scheduler(DevicePool(args.devices), cfg,
                             cache=cache) as sched:
            tasks = [sched.submit_nowait(r) for r in requests]
            for fut in asyncio.as_completed(tasks):
                res = await fut
                doc = res.to_dict()
                if res.outputs and args.save_outputs:
                    for name, arr in res.outputs.items():
                        np.save(f"{res.id}.{name}.npy", arr)
                        doc.setdefault("saved", []).append(
                            f"{res.id}.{name}.npy")
                out.write(_json.dumps(doc) + "\n")
                out.flush()
            return sched.report()

    with _timeline_scope(args):
        report = asyncio.run(_serve())
        _export_timeline(args, _tl.current())
    if out is not sys.stdout:
        out.close()
    _write_json(report, args.report, "serve report")
    failed = sum(n for s, n in report["by_status"].items() if s != "ok")
    print(f"served {report['requests']} request(s): "
          f"{report['by_status']}", file=sys.stderr)
    if args.status:
        from repro.obs.slo import format_slo
        print(format_slo(report["slo"]), file=sys.stderr)
    return 1 if (args.strict and failed) else 0


def _cmd_loadgen(args) -> int:
    """Synthetic load (and, with --chaos, the soak gate) over the serve
    layer; see :mod:`repro.serve.loadgen` / :mod:`repro.serve.soak`."""
    import tempfile

    from repro.obs import timeline as _tl

    cache_dir = args.cache_dir
    tmp = None
    if not cache_dir:
        tmp = tempfile.TemporaryDirectory(prefix="repro-serve-cache-")
        cache_dir = tmp.name
    try:
        with _timeline_scope(args):
            if args.chaos:
                from repro.serve import SoakConfig, run_soak
                report = run_soak(cache_dir, SoakConfig(
                    n_requests=args.requests, n_devices=args.devices,
                    seed=args.seed, size=args.size,
                    deadline_s=args.deadline,
                    stagger_s=args.stagger,
                    queue_depth=args.queue_depth,
                    hedge_after_s=args.hedge_after,
                    slo=dict(objective_ms=args.slo_objective_ms,
                             target=args.slo_target)))
            else:
                from repro.serve import run_loadgen
                report = run_loadgen(
                    cache_dir, n_requests=args.requests,
                    n_devices=args.devices, seed=args.seed,
                    size=args.size, deadline_s=args.deadline,
                    stagger_s=args.stagger,
                    config=_serve_config_from_args(args),
                    warm_pass=not args.no_warm)
            _export_timeline(args, _tl.current())
    finally:
        if tmp is not None:
            tmp.cleanup()
    _write_json(report, args.json, "loadgen report")

    if args.status:
        from repro.obs.slo import format_slo
        snap = report.get("slo")
        if snap is None:  # non-chaos: per-wave snapshots; show the last
            waves = report.get("waves") or {}
            for stats in waves.values():
                snap = stats.get("slo")
        if snap is not None:
            print(format_slo(snap), file=sys.stderr)

    if args.chaos:
        gate = report["gate"]
        for c in gate["checks"]:
            mark = "ok  " if c["passed"] else "FAIL"
            print(f"  {mark} {c['name']:<20} {c['detail']}",
                  file=sys.stderr)
        print(f"soak gate: {'PASSED' if gate['passed'] else 'FAILED'} "
              f"({report['by_status']})", file=sys.stderr)
        return 0 if gate["passed"] else 1
    # fault-free loadgen gates: nothing escaped, and (with a warm pass)
    # the persistent cache measurably beat the cold compile path
    rc = 0
    for wave, stats in report["waves"].items():
        v = stats["verify"]
        print(f"  {wave}: {stats['by_status']} "
              f"p50 {stats['latency_p50_us'] / 1e3:.1f}ms "
              f"compile-p50 {stats['compile_p50_us'] / 1e3:.1f}ms "
              f"escaped {v['escaped_count']}", file=sys.stderr)
        if v["escaped_count"] or v["untyped_failures"]:
            rc = 1
    if not args.no_warm:
        speedup = report.get("warm_speedup_p50")
        print(f"  warm compile p50 speedup: {speedup}x", file=sys.stderr)
        if not speedup or speedup <= 1.0:
            print("FAIL: warm pass no faster than cold", file=sys.stderr)
            rc = 1
    return rc


def _parse_perturb(specs) -> dict[str, float]:
    out = {}
    for spec in specs or []:
        if ":" not in spec:
            raise SystemExit(
                f"bad --perturb spec {spec!r} (need CONFIG:FACTOR, e.g. "
                "table2_quick:1.2)")
        label, factor = spec.rsplit(":", 1)
        out[label] = float(factor)
    return out


def _cmd_obs(args) -> int:
    from repro.bench import history as H

    if args.obs_cmd == "record":
        if args.import_baseline:
            entries = H.import_baseline(args.import_baseline)
            H.append_entries(args.ledger, entries)
            print(f"imported {len(entries)} baseline entr"
                  f"{'y' if len(entries) == 1 else 'ies'} from "
                  f"{args.import_baseline} into {args.ledger}",
                  file=sys.stderr)
            return 0
        from repro.obs import timeline as tl
        with tl.enabled():
            entries = H.measure(reps=args.reps, quick=args.quick,
                                perturb=_parse_perturb(args.perturb))
            bus = tl.current()
            if args.timeline:
                bus.export_jsonl(args.timeline)
        H.append_entries(args.ledger, entries)
        for e in entries:
            wall = f"{e.wall_ms:9.2f}" if e.wall_ms is not None else \
                "        -"
            print(f"  {e.config:<42} {e.pipeline:<9} {e.executor:<9} "
                  f"modeled {e.modeled_ms:9.4f} ms  wall {wall} ms",
                  file=sys.stderr)
        print(f"recorded {len(entries)} entries @ {entries[0].sha} "
              f"into {args.ledger}", file=sys.stderr)
        return 0

    entries = H.load_ledger(args.ledger)

    if args.obs_cmd == "compare":
        metrics = (["modeled", "wall"] if args.metric == "both"
                   else [args.metric])
        regressions = 0
        for metric in metrics:
            for v in H.detect(entries, metric=metric, k=args.k,
                              floor=args.floor, against=args.against):
                mark = {"regression": "REGRESSION", "improvement":
                        "improvement", "ok": "ok", "skipped": "skipped"}[
                            v.status]
                delta = (f"{v.delta_pct:+.1f}%"
                         if v.delta_pct is not None else "-")
                note = f"  ({v.note})" if v.note else ""
                print(f"  {metric:<7} {v.config:<42} {v.pipeline:<9} "
                      f"{v.executor:<9} {mark:<11} {delta:>8}{note}")
                regressions += v.status == "regression"
        if regressions:
            print(f"FAIL: {regressions} config(s) regressed beyond the "
                  "noise band", file=sys.stderr)
            return 1
        print("[observatory ok: no regressions]", file=sys.stderr)
        return 0

    if args.obs_cmd == "report":
        if args.format == "html":
            doc = H.render_html(entries, metric=args.metric, k=args.k,
                                floor=args.floor)
        else:
            doc = H.format_report(entries, metric=args.metric, k=args.k,
                                  floor=args.floor) + "\n"
        if args.out:
            with open(args.out, "w") as f:
                f.write(doc)
            print(f"report written to {args.out}", file=sys.stderr)
        else:
            sys.stdout.write(doc)
        return 0

    raise SystemExit(f"unknown obs subcommand {args.obs_cmd!r}")


def _cmd_obs_events(args) -> int:
    """Filter/pretty-print a timeline JSONL export."""
    import json
    shown = 0
    with open(args.file) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            ev = json.loads(line)
            if "category" not in ev:
                continue  # the export's header record
            if args.category and ev.get("category") != args.category:
                continue
            if args.kind and ev.get("kind") != args.kind:
                continue
            if args.grep and args.grep not in line:
                continue
            attrs = ev.get("attrs") or {}
            extra = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
            dur = (f" {ev['dur_us']:.1f}us"
                   if ev.get("dur_us") else "")
            print(f"[{ev['ts_us']:>12.1f}] {ev['category']:<7} "
                  f"{ev['kind']:<8} {ev['name']}{dur}"
                  f"{'  ' + extra if extra else ''}")
            shown += 1
            if args.limit and shown >= args.limit:
                break
    print(f"[{shown} event(s)]", file=sys.stderr)
    return 0


def _cmd_obs_trace(args) -> int:
    """Assemble request traces from a timeline export and render them."""
    import json as _json

    from repro.obs import timeline as tl
    from repro.obs import trace as _trace

    header, events = tl.read_jsonl(args.file)
    trees = _trace.assemble(events)
    if not trees:
        print("no traced events in this export (was it produced with "
              "--trace-requests?)", file=sys.stderr)
        return 1
    if header and (header.get("dropped") or header.get("sampled_out")):
        print(f"note: export is truncated ({header.get('dropped', 0)} "
              f"ring-dropped, {header.get('sampled_out', 0)} sampled-out "
              "event(s)) — trees may be partial", file=sys.stderr)

    verdict = _trace.verify_request_traces(trees)
    if args.check:
        for p in verdict["problems"]:
            print(f"FAIL: {p}", file=sys.stderr)
        slow = verdict["slowest"]
        if slow is not None:
            print(f"slowest request {slow['trace_id']}: "
                  f"{slow['dur_us'] / 1e3:.1f} ms, critical path "
                  f"{' -> '.join(slow['critical_path'])}",
                  file=sys.stderr)
        print(f"checked {verdict['requests']} request trace(s): "
              f"{'ok' if verdict['ok'] else 'FAILED'}", file=sys.stderr)
        return 0 if verdict["ok"] else 1

    if args.id:
        if args.id not in trees:
            known = ", ".join(str(t) for t in list(trees)[:10])
            print(f"error: no trace {args.id!r} in {args.file} "
                  f"(have: {known}{', ...' if len(trees) > 10 else ''})",
                  file=sys.stderr)
            return 1
        chosen = [args.id]
    elif args.all:
        chosen = list(trees)
    else:
        # default: the slowest request trace (else the first trace)
        slow = verdict["slowest"]
        chosen = [slow["trace_id"]] if slow else [next(iter(trees))]

    if args.chrome:
        if len(chosen) != 1:
            print("error: --chrome exports exactly one trace (use --id)",
                  file=sys.stderr)
            return 1
        doc = _trace.tree_to_chrome(trees[chosen[0]])
        with open(args.chrome, "w") as f:
            _json.dump(doc, f, indent=2, default=str)
        print(f"chrome trace for {chosen[0]} written to {args.chrome}",
              file=sys.stderr)

    for tid in chosen:
        print(_trace.render_tree(trees[tid]))
        print()
    print(f"[{len(chosen)}/{len(trees)} trace(s) shown]", file=sys.stderr)
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro",
        description="OpenACC reduction compiler + simulated GPU "
                    "(PMAM'14 reproduction)")
    ap.add_argument("--debug", action="store_true",
                    help="re-raise errors with a full traceback instead "
                         "of the one-line message")
    sub = ap.add_subparsers(dest="cmd", required=True)

    def add_common(p):
        p.add_argument("file", help="OpenACC source fragment")
        p.add_argument("--compiler", default="openuh",
                       choices=["openuh", "vendor-a", "vendor-b",
                                "caps-like", "pgi-like"])
        p.add_argument("--num-gangs", type=int, default=None)
        p.add_argument("--num-workers", type=int, default=None)
        p.add_argument("--vector-length", type=int, default=None)
        p.add_argument("--pipeline", default=None, metavar="NAME",
                       help="pass pipeline: 'minimal', 'optimized', or a "
                            "comma list of optimization passes (default: "
                            "REPRO_PASSES env, then the profile's choice)")
        # default=SUPPRESS so a subcommand without --debug does not
        # clobber a top-level `python -m repro --debug <cmd>`
        p.add_argument("--debug", action="store_true",
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)

    pc = sub.add_parser("compile", help="compile and inspect")
    add_common(pc)
    pc.add_argument("--dump-ir", action="store_true",
                    help="print the pass table and before/after IR for "
                         "every pass that changed it")
    pc.add_argument("--dump-plan", action="store_true")
    pc.add_argument("--dump-kernels", action="store_true")

    pe = sub.add_parser(
        "explain",
        help="show the pass pipeline: per-pass timing/notes and the "
             "autotuner's cost-model strategy decisions")
    add_common(pe)
    pe.add_argument("--ir", action="store_true",
                    help="also print before/after IR diffs per pass")

    pr = sub.add_parser("run", help="compile and execute")
    add_common(pr)
    pr.add_argument("--array", action="append",
                    help="NAME=KIND:SHAPE:CTYPE or NAME=file.npy")
    pr.add_argument("--scalar", action="append", help="NAME=VALUE")
    pr.add_argument("--save", action="store_true",
                    help="save output arrays to NAME.npy")
    pr.add_argument("--profile", action="store_true",
                    help="attach a profiler and print the per-kernel "
                         "report after the run")
    pr.add_argument("--timeline", metavar="PATH",
                    help="enable the telemetry bus and export its events "
                         "as JSONL ('-' for stdout)")
    pr.add_argument("--trace-requests", action="store_true",
                    help="request tracing: the run forms one span tree "
                         "in the timeline (inspect with 'obs trace')")

    pp = sub.add_parser(
        "profile", help="compile, run, and print an nvprof-style report")
    add_common(pp)
    pp.add_argument("--array", action="append",
                    help="NAME=KIND:SHAPE:CTYPE or NAME=file.npy "
                         "(missing region arrays are synthesized)")
    pp.add_argument("--scalar", action="append", help="NAME=VALUE")
    pp.add_argument("--size", type=int, default=1024,
                    help="extent for synthesized arrays (default 1024)")
    pp.add_argument("--runs", type=int, default=1,
                    help="launch the program N times into one profile")
    pp.add_argument("--trace", action="store_true",
                    help="also collect per-access structured trace events")
    pp.add_argument("--json", metavar="PATH",
                    help="write the Chrome-trace profile document "
                         "(chrome://tracing loadable; '-' for stdout)")
    pp.add_argument("--lines", action="store_true",
                    help="per-statement attribution: annotated kernel "
                         "listings in the report, statement counter "
                         "tracks and roofline verdicts in the JSON")
    pp.add_argument("--timeline", metavar="PATH",
                    help="enable the telemetry bus and export its events "
                         "as JSONL ('-' for stdout)")
    pp.add_argument("--trace-requests", action="store_true",
                    help="request tracing: each run forms one span tree "
                         "in the timeline (inspect with 'obs trace')")

    pa = sub.add_parser(
        "annotate",
        help="print kernels with per-line %%time/transaction/conflict "
             "gutters and a roofline verdict")
    add_common(pa)
    pa.add_argument("--array", action="append",
                    help="NAME=KIND:SHAPE:CTYPE or NAME=file.npy "
                         "(missing region arrays are synthesized)")
    pa.add_argument("--scalar", action="append", help="NAME=VALUE")
    pa.add_argument("--size", type=int, default=1024,
                    help="extent for synthesized arrays (default 1024)")
    pa.add_argument("--json", metavar="PATH",
                    help="write per-statement rows + roofline verdicts "
                         "as JSON ('-' for stdout)")

    pf = sub.add_parser(
        "faultcheck",
        help="run a seeded fault-injection campaign and classify outcomes")
    add_common(pf)
    pf.add_argument("--seed", type=int, default=0,
                    help="campaign base seed (default 0)")
    pf.add_argument("--campaign", type=int, default=50, metavar="N",
                    help="number of fault trials (default 50)")
    pf.add_argument("--no-detect", action="store_true",
                    help="disable retries, voting and degradation to "
                         "measure the bare escape rate")
    pf.add_argument("--size", type=int, default=256,
                    help="extent for synthesized arrays (default 256)")
    pf.add_argument("--watchdog-budget", type=int, default=20_000,
                    help="per-launch loop-step budget (default 20000)")
    pf.add_argument("--json", metavar="PATH",
                    help="write the campaign document as JSON "
                         "('-' for stdout)")
    pf.add_argument("--timeline", metavar="PATH",
                    help="enable the telemetry bus and export its events "
                         "as JSONL ('-' for stdout)")

    def add_serve_common(p):
        p.add_argument("--devices", type=int, default=4,
                       help="simulated devices in the pool (default 4)")
        p.add_argument("--cache-dir", metavar="DIR",
                       help="persistent compile-cache directory "
                            "(loadgen default: a fresh temp dir)")
        p.add_argument("--queue-depth", type=int, default=64,
                       help="bounded queue per priority class (default 64)")
        p.add_argument("--deadline", type=float, default=30.0,
                       help="default per-request deadline in seconds")
        p.add_argument("--hedge-after", type=float, default=None,
                       metavar="S",
                       help="hedge a still-running request onto an idle "
                            "device after S seconds (default: off)")
        p.add_argument("--max-tries", type=int, default=3,
                       help="cross-device tries per request (default 3)")
        p.add_argument("--runs", type=int, default=1,
                       help="redundant-execution voting replicas per run")
        p.add_argument("--max-attempts", type=int, default=2,
                       help="in-run transient-fault retries (default 2)")
        p.add_argument("--degrade", action="store_true",
                       help="walk the fallback chain on strategy failure")
        p.add_argument("--watchdog-budget", type=int, default=50_000,
                       help="per-launch loop-step budget (default 50000)")
        p.add_argument("--timeline", metavar="PATH",
                       help="enable the telemetry bus and export its "
                            "events as JSONL ('-' for stdout)")
        p.add_argument("--trace-requests", action="store_true",
                       help="request-scoped causal tracing: every request "
                            "gets a span tree in the timeline (inspect "
                            "with 'obs trace')")
        p.add_argument("--slo-objective-ms", type=float, default=1000.0,
                       metavar="MS",
                       help="SLO latency objective in ms (default 1000)")
        p.add_argument("--slo-target", type=float, default=0.99,
                       metavar="FRAC",
                       help="fraction of requests that must be ok within "
                            "the objective (default 0.99)")
        p.add_argument("--status", action="store_true",
                       help="print the SLO monitor snapshot (per-priority "
                            "latency, error-budget burn) after the run")
        p.add_argument("--debug", action="store_true",
                       default=argparse.SUPPRESS, help=argparse.SUPPRESS)

    ps = sub.add_parser(
        "serve",
        help="JSONL compile-and-run service over a simulated device pool")
    ps.add_argument("requests", help="JSONL request file ('-' for stdin)")
    add_serve_common(ps)
    ps.add_argument("--output", default="-", metavar="PATH",
                    help="JSONL verdict stream (default stdout)")
    ps.add_argument("--report", metavar="PATH",
                    help="write the scheduler report as JSON "
                         "('-' for stdout)")
    ps.add_argument("--save-outputs", action="store_true",
                    help="save each ok result's arrays to ID.NAME.npy")
    ps.add_argument("--strict", action="store_true",
                    help="exit 1 if any request was not served ok")

    pl = sub.add_parser(
        "loadgen",
        help="drive the serve layer with synthetic load; --chaos arms "
             "faults mid-load and enforces the soak gate")
    add_serve_common(pl)
    pl.add_argument("--requests", type=int, default=64,
                    help="requests per wave (default 64)")
    pl.add_argument("--seed", type=int, default=0)
    pl.add_argument("--size", type=int, default=256,
                    help="reduction extent per request (default 256)")
    pl.add_argument("--stagger", type=float, default=0.0, metavar="S",
                    help="seconds between submissions (default: burst)")
    pl.add_argument("--chaos", action="store_true",
                    help="chaos soak: arm seeded fault plans on pool "
                         "devices mid-load and gate on zero escapes, "
                         "typed errors, and breaker trip+re-admission")
    pl.add_argument("--no-warm", action="store_true",
                    help="skip the disk-warm second wave")
    pl.add_argument("--json", metavar="PATH",
                    help="write the full report as JSON ('-' for stdout)")

    po = sub.add_parser(
        "obs",
        help="the perf observatory: record/compare/report the bench "
             "history ledger, pretty-print timeline events")
    po.add_argument("--debug", action="store_true",
                    default=argparse.SUPPRESS, help=argparse.SUPPRESS)
    obs_sub = po.add_subparsers(dest="obs_cmd", required=True)

    def add_ledger(p):
        p.add_argument("--ledger", default="artifacts/bench_history.jsonl",
                       metavar="PATH",
                       help="JSONL run ledger (default "
                            "artifacts/bench_history.jsonl)")

    orec = obs_sub.add_parser(
        "record", help="measure the config grid and append to the ledger")
    add_ledger(orec)
    orec.add_argument("--reps", type=int, default=3,
                      help="wall-clock repetitions per config (default 3)")
    orec.add_argument("--quick", action="store_true",
                      help="small sizes/geometry (tests, sanity runs)")
    orec.add_argument("--import-baseline", nargs="?",
                      const="BENCH_table2.json", default=None,
                      metavar="PATH",
                      help="seed the ledger from a committed bench-smoke "
                           "baseline instead of measuring (default "
                           "BENCH_table2.json)")
    orec.add_argument("--perturb", action="append", metavar="CONFIG:FACTOR",
                      help="scale one config's samples (self-test hook, "
                           "e.g. table2_quick:1.2)")
    orec.add_argument("--timeline", metavar="PATH",
                      help="also export the run's telemetry events as "
                           "JSONL")

    ocmp = obs_sub.add_parser(
        "compare",
        help="flag configs whose latest median left the baseline's "
             "noise band (exit 1 on regression)")
    add_ledger(ocmp)
    ocmp.add_argument("--metric", default="modeled",
                      choices=["modeled", "wall", "both"],
                      help="modeled ms (deterministic, cross-machine; "
                           "default), wall ms (same-host only), or both")
    ocmp.add_argument("--k", type=float, default=3.0,
                      help="noise-band width in MADs (default 3)")
    ocmp.add_argument("--floor", type=float, default=0.05,
                      help="relative band floor (default 0.05 = 5%%)")
    ocmp.add_argument("--against", default="baseline",
                      choices=["baseline", "previous"],
                      help="anchor: each key's first entry (default; "
                           "drift-proof) or the previous entry")

    orep = obs_sub.add_parser(
        "report", help="trend report over the ledger (markdown or HTML)")
    add_ledger(orep)
    orep.add_argument("--metric", default="modeled",
                      choices=["modeled", "wall"])
    orep.add_argument("--k", type=float, default=3.0)
    orep.add_argument("--floor", type=float, default=0.05)
    orep.add_argument("--format", default="md", choices=["md", "html"])
    orep.add_argument("--out", metavar="PATH",
                      help="write to PATH instead of stdout")

    oev = obs_sub.add_parser(
        "events", help="filter/pretty-print a timeline JSONL export")
    oev.add_argument("file", help="timeline JSONL (from --timeline PATH)")
    oev.add_argument("--category", help="keep one category (gpu, passes, "
                                        "faults, bench)")
    oev.add_argument("--kind", choices=["span", "counter", "decision",
                                        "fault"])
    oev.add_argument("--grep", metavar="SUBSTR",
                     help="keep events whose JSONL line contains SUBSTR")
    oev.add_argument("--limit", type=int, default=0, metavar="N",
                     help="stop after N events (default: all)")

    otr = obs_sub.add_parser(
        "trace",
        help="assemble request span trees from a timeline export and "
             "render tree + critical path (default: slowest request)")
    otr.add_argument("file", help="timeline JSONL produced with "
                                  "--trace-requests")
    otr.add_argument("--id", metavar="TRACE_ID",
                     help="render one trace (a request id, or tNNNN for "
                          "top-level runs)")
    otr.add_argument("--all", action="store_true",
                     help="render every assembled trace")
    otr.add_argument("--chrome", metavar="PATH",
                     help="also export the chosen trace as a Chrome "
                          "trace-event JSON (flamegraph-shaped)")
    otr.add_argument("--check", action="store_true",
                     help="verify every request trace is single-rooted "
                          "with no orphans and the slowest request's "
                          "span tree accounts for its wall time "
                          "(exit 1 on failure)")

    for bench in ("table2", "fig11", "fig12", "ablations"):
        sub.add_parser(bench, help=f"regenerate {bench} "
                                   "(remaining args forwarded)")

    args, extra = ap.parse_known_args(argv)
    try:
        if args.cmd == "compile":
            if extra:
                ap.error(f"unrecognized arguments: {' '.join(extra)}")
            return _cmd_compile(args)
        if args.cmd == "explain":
            if extra:
                ap.error(f"unrecognized arguments: {' '.join(extra)}")
            return _cmd_explain(args)
        if args.cmd == "run":
            if extra:
                ap.error(f"unrecognized arguments: {' '.join(extra)}")
            return _cmd_run(args)
        if args.cmd == "profile":
            if extra:
                ap.error(f"unrecognized arguments: {' '.join(extra)}")
            return _cmd_profile(args)
        if args.cmd == "annotate":
            if extra:
                ap.error(f"unrecognized arguments: {' '.join(extra)}")
            return _cmd_annotate(args)
        if args.cmd == "faultcheck":
            if extra:
                ap.error(f"unrecognized arguments: {' '.join(extra)}")
            return _cmd_faultcheck(args)
        if args.cmd == "serve":
            if extra:
                ap.error(f"unrecognized arguments: {' '.join(extra)}")
            return _cmd_serve(args)
        if args.cmd == "loadgen":
            if extra:
                ap.error(f"unrecognized arguments: {' '.join(extra)}")
            return _cmd_loadgen(args)
        if args.cmd == "obs":
            if extra:
                ap.error(f"unrecognized arguments: {' '.join(extra)}")
            if args.obs_cmd == "events":
                return _cmd_obs_events(args)
            if args.obs_cmd == "trace":
                return _cmd_obs_trace(args)
            return _cmd_obs(args)
        import importlib
        mod = importlib.import_module(f"repro.bench.{args.cmd}")
        return mod.main(extra)
    except (ReproError, OSError) as exc:
        if getattr(args, "debug", False):
            raise
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
