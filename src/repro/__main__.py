"""Compiler driver CLI.

Usage examples::

    # inspect the compilation pipeline of an OpenACC source file
    python -m repro compile examples/programs/vecsum.c --dump-ir \\
        --dump-plan --dump-kernels

    # compile and run, synthesizing input data
    python -m repro run examples/programs/vecsum.c \\
        --array "a=arange:1024:float" --compiler vendor-b

    # regenerate the paper's artifacts
    python -m repro table2 --quick
    python -m repro fig11 --quick
    python -m repro fig12 --quick
    python -m repro ablations --quick

Array specs for ``run``: ``NAME=KIND:SHAPE:CTYPE`` where KIND is ``zeros``,
``ones``, ``arange`` or ``rand`` and SHAPE is ``x``-separated (e.g.
``input=rand:4x8x32:float``), or ``NAME=path/to/file.npy``.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import acc
from repro.dtypes import ctype_to_dtype
from repro.errors import ReproError

__all__ = ["main"]


def _parse_array_spec(spec: str) -> tuple[str, np.ndarray]:
    if "=" not in spec:
        raise SystemExit(f"bad --array spec {spec!r} (need NAME=...)")
    name, rhs = spec.split("=", 1)
    if rhs.endswith(".npy"):
        return name, np.load(rhs)
    parts = rhs.split(":")
    if len(parts) != 3:
        raise SystemExit(
            f"bad --array spec {spec!r} (need KIND:SHAPE:CTYPE or *.npy)")
    kind, shape_s, ctype = parts
    shape = tuple(int(x) for x in shape_s.split("x"))
    dt = ctype_to_dtype(ctype).np
    n = int(np.prod(shape))
    if kind == "zeros":
        arr = np.zeros(n, dtype=dt)
    elif kind == "ones":
        arr = np.ones(n, dtype=dt)
    elif kind == "arange":
        arr = np.arange(n).astype(dt)
    elif kind == "rand":
        arr = (np.random.default_rng(0).random(n) * 8).astype(dt)
    else:
        raise SystemExit(f"unknown array kind {kind!r}")
    return name, arr.reshape(shape)


def _cmd_compile(args) -> int:
    source = open(args.file).read()
    from repro.frontend.cparser import parse_region
    from repro.ir.builder import build_region
    from repro.ir.analysis import analyze_region
    from repro.ir.autopar import auto_parallelize
    from repro.ir.pprint import format_plan, format_region
    from repro.acc.launchconfig import resolve_geometry
    from repro.acc.profiles import get_profile

    profile = get_profile(args.compiler)
    region = build_region(parse_region(source))
    if region.kind == "kernels":
        region = auto_parallelize(region)
    geom = resolve_geometry(region.num_gangs, region.num_workers,
                            region.vector_length, args.num_gangs,
                            args.num_workers, args.vector_length)
    if args.dump_ir:
        print(format_region(region))
        print()
    plan = analyze_region(region, num_workers=geom.num_workers,
                          vector_length=geom.vector_length,
                          infer_span=profile.infers_span)
    if args.dump_plan:
        print(format_plan(plan))
        print()
    prog = acc.compile(source, compiler=args.compiler,
                       num_gangs=args.num_gangs,
                       num_workers=args.num_workers,
                       vector_length=args.vector_length)
    print(f"compiled with profile {profile.name!r}: "
          f"{len(prog.lowered.kernels)} kernel(s), geometry "
          f"{geom.num_gangs}x{geom.num_workers}x{geom.vector_length}")
    if args.dump_kernels:
        print()
        print(prog.dump_kernels())
    return 0


def _cmd_run(args) -> int:
    source = open(args.file).read()
    prog = acc.compile(source, compiler=args.compiler,
                       num_gangs=args.num_gangs,
                       num_workers=args.num_workers,
                       vector_length=args.vector_length)
    kwargs: dict = {}
    for spec in args.array or []:
        name, arr = _parse_array_spec(spec)
        kwargs[name] = arr
    for spec in args.scalar or []:
        name, val = spec.split("=", 1)
        kwargs[name] = float(val) if "." in val else int(val)
    res = prog.run(**kwargs)
    for name, value in res.scalars.items():
        print(f"scalar {name} = {value}")
    for name, arr in res.outputs.items():
        flat = arr.ravel()
        head = ", ".join(f"{v}" for v in flat[:6])
        print(f"array  {name}: shape {arr.shape}, [{head}"
              f"{', ...' if flat.size > 6 else ''}]")
        if args.save:
            np.save(f"{name}.npy", arr)
            print(f"       saved to {name}.npy")
    print(f"modeled: {res.modeled_ms:.3f} ms total "
          f"({res.kernel_ms:.3f} ms kernels)")
    return 0


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro",
        description="OpenACC reduction compiler + simulated GPU "
                    "(PMAM'14 reproduction)")
    sub = ap.add_subparsers(dest="cmd", required=True)

    def add_common(p):
        p.add_argument("file", help="OpenACC source fragment")
        p.add_argument("--compiler", default="openuh",
                       choices=["openuh", "vendor-a", "vendor-b",
                                "caps-like", "pgi-like"])
        p.add_argument("--num-gangs", type=int, default=None)
        p.add_argument("--num-workers", type=int, default=None)
        p.add_argument("--vector-length", type=int, default=None)

    pc = sub.add_parser("compile", help="compile and inspect")
    add_common(pc)
    pc.add_argument("--dump-ir", action="store_true")
    pc.add_argument("--dump-plan", action="store_true")
    pc.add_argument("--dump-kernels", action="store_true")

    pr = sub.add_parser("run", help="compile and execute")
    add_common(pr)
    pr.add_argument("--array", action="append",
                    help="NAME=KIND:SHAPE:CTYPE or NAME=file.npy")
    pr.add_argument("--scalar", action="append", help="NAME=VALUE")
    pr.add_argument("--save", action="store_true",
                    help="save output arrays to NAME.npy")

    for bench in ("table2", "fig11", "fig12", "ablations"):
        sub.add_parser(bench, help=f"regenerate {bench} "
                                   "(remaining args forwarded)")

    args, extra = ap.parse_known_args(argv)
    try:
        if args.cmd == "compile":
            if extra:
                ap.error(f"unrecognized arguments: {' '.join(extra)}")
            return _cmd_compile(args)
        if args.cmd == "run":
            if extra:
                ap.error(f"unrecognized arguments: {' '.join(extra)}")
            return _cmd_run(args)
        import importlib
        mod = importlib.import_module(f"repro.bench.{args.cmd}")
        return mod.main(extra)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
