"""Seeded fault-injection campaigns: N trials, one classification table.

A campaign compiles a program once, computes a fault-free reference
result, then runs ``trials`` seeded fault trials.  Each trial enables
exactly one fault kind (rotating through :data:`~repro.faults.plan.
FAULT_KINDS`) with a trial-unique seed and ``max_faults=1``, runs the
program through the hardened ``Program.run`` path, and classifies the
outcome:

* ``clean``              — the plan's dice never fired; nothing injected;
* ``masked``             — a fault was injected but the result is correct
  with no corrective machinery engaged (it landed somewhere harmless);
* ``detected``           — a typed :class:`~repro.errors.ReproError`
  surfaced to the caller (breakage became a detectable event);
* ``corrected-by-retry`` — a transient fault was retried successfully;
* ``degraded``           — the answer was served by a fallback strategy
  or corrected by redundant-execution voting;
* ``escaped``            — the result is wrong and nothing noticed.
  **With detection enabled this count must be zero** — that is the
  subsystem's acceptance bar, enforced by the CLI exit code.

Everything is deterministic: the same base seed reproduces the same
fault sites and the same table, so a campaign failure is replayable.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

from repro import acc
from repro.bench.harness import Series, format_series
from repro.errors import ReproError
from repro.faults.plan import FAULT_KINDS, FaultPlan

__all__ = ["CampaignResult", "TrialOutcome", "run_campaign",
           "synthesize_inputs", "CATEGORIES"]

CATEGORIES = ("clean", "masked", "detected", "corrected-by-retry",
              "degraded", "escaped")


def synthesize_inputs(prog, kwargs: dict, size: int,
                      rng_seed: int = 0) -> None:
    """Fill region arrays not already present in ``kwargs``.

    Symbolic extents already bound by a provided array keep that binding;
    everything else defaults to ``size``.  Floats get uniform [0, 8) data,
    integers small non-negative values — enough to exercise every kernel
    without overflowing any reduction operator.  (Shared by the campaign
    runner and the ``profile`` CLI subcommand.)
    """
    bound: dict[str, int] = {}
    for info in prog.region.arrays:
        host = kwargs.get(info.name)
        if host is None or not info.extents:
            continue
        for i, ext in enumerate(info.extents):
            if isinstance(ext, str) and i < np.ndim(host):
                bound[ext] = host.shape[i]
    rng = np.random.default_rng(rng_seed)
    for info in prog.region.arrays:
        if info.name in kwargs:
            continue
        extents = info.extents or (size,)
        shape = tuple(ext if isinstance(ext, int) else bound.get(ext, size)
                      for ext in extents)
        n = int(np.prod(shape))
        if info.dtype.np.kind == "f":
            arr = (rng.random(n) * 8).astype(info.dtype.np)
        else:
            arr = rng.integers(0, 8, n).astype(info.dtype.np)
        kwargs[info.name] = arr.reshape(shape)
        for i, ext in enumerate(extents):
            if isinstance(ext, str):
                bound.setdefault(ext, shape[i])


@dataclass(frozen=True)
class TrialOutcome:
    """Classification of one fault trial."""

    trial: int
    kind: str       # fault kind this trial armed
    plan_seed: int
    category: str   # one of CATEGORIES
    sites: tuple[str, ...]  # fault sites actually hit
    strategy: str   # strategy that served the answer ("" when detected)
    attempts: int
    error: str      # surfaced error type name ("" unless detected)

    def to_dict(self) -> dict:
        return {"trial": self.trial, "kind": self.kind,
                "plan_seed": self.plan_seed, "category": self.category,
                "sites": list(self.sites), "strategy": self.strategy,
                "attempts": self.attempts, "error": self.error}


@dataclass
class CampaignResult:
    """All trial outcomes of one campaign plus the campaign config."""

    seed: int
    trials: list[TrialOutcome]
    detect: bool
    compiler: str = "openuh"
    degradations: dict = field(default_factory=dict)

    @property
    def counts(self) -> dict[str, int]:
        c = {cat: 0 for cat in CATEGORIES}
        for t in self.trials:
            c[t.category] += 1
        return c

    @property
    def escaped(self) -> int:
        return self.counts["escaped"]

    @property
    def counts_by_kind(self) -> dict[str, dict[str, int]]:
        """fault kind → category → trial count (the table's breakdown,
        machine-readable)."""
        out: dict[str, dict[str, int]] = {}
        for t in self.trials:
            per = out.setdefault(t.kind, {cat: 0 for cat in CATEGORIES})
            per[t.category] += 1
        return out

    @property
    def escaped_by_kind(self) -> dict[str, int]:
        """fault kind → escaped-trial count (only kinds that escaped) —
        the per-kind gate: a hardening regression in *one* kind must not
        hide behind clean totals for the others."""
        return {kind: cats["escaped"]
                for kind, cats in self.counts_by_kind.items()
                if cats["escaped"]}

    def to_dict(self) -> dict:
        return {"seed": self.seed, "detect": self.detect,
                "compiler": self.compiler, "counts": self.counts,
                "counts_by_kind": self.counts_by_kind,
                "escaped_by_kind": self.escaped_by_kind,
                "trials": [t.to_dict() for t in self.trials]}

    def table(self) -> str:
        """Aligned campaign report: totals plus a per-kind breakdown."""
        counts = self.counts
        lines = [f"Fault campaign: {len(self.trials)} trials, "
                 f"seed {self.seed}, detection "
                 f"{'ON' if self.detect else 'OFF'}"]
        for cat in CATEGORIES:
            lines.append(f"  {cat:<20s} {counts[cat]:>6d}")
        kinds = [k for k, _, _ in FAULT_KINDS]
        series = []
        for cat in CATEGORIES:
            s = Series(cat)
            for kind in kinds:
                s.add(kind, sum(1 for t in self.trials
                                if t.kind == kind and t.category == cat))
            series.append(s)
        lines.append("")
        lines.append(format_series("Per-kind breakdown", series,
                                   xlabel="fault kind", unit="trials"))
        return "\n".join(lines)


def _matches(res, ref) -> bool:
    """Result equivalence up to reassociation (degraded strategies and the
    host interpreter may legitimately reassociate float reductions)."""
    for name, want in ref.scalars.items():
        got = res.scalars.get(name)
        if got is None:
            return False
        if np.asarray(want).dtype.kind == "f":
            if not np.allclose(got, want, rtol=1e-5, atol=1e-8):
                return False
        elif got != want:
            return False
    for name, want in ref.outputs.items():
        got = res.outputs.get(name)
        if got is None or got.shape != want.shape:
            return False
        if want.dtype.kind == "f":
            if not np.allclose(got, want, rtol=1e-5, atol=1e-8):
                return False
        elif not np.array_equal(got, want):
            return False
    return True


def _classify(res, ref, injector) -> str:
    if not injector.records:
        return "clean"
    if not _matches(res, ref):
        return "escaped"
    if res.degradations or res.strategy != "primary":
        return "degraded"
    if res.attempts > 1:
        return "corrected-by-retry"
    return "masked"


def run_campaign(source: str, *, seed: int = 0, trials: int = 50,
                 compiler: str = "openuh", num_gangs: int | None = None,
                 num_workers: int | None = None,
                 vector_length: int | None = None, detect: bool = True,
                 size: int = 256, watchdog_budget: int = 20_000,
                 max_attempts: int = 3, runs: int = 3,
                 inputs: dict | None = None,
                 pipeline: str | None = None) -> CampaignResult:
    """Run ``trials`` seeded single-fault trials and classify each one.

    ``detect=True`` arms the full hardening stack — transient-fault
    retries, redundant-execution voting (``runs`` replicas), and graceful
    strategy degradation — under which no injected fault may escape.
    ``detect=False`` runs each trial bare (one attempt, no voting, no
    fallback), which is how you *measure* the escape rate the hardening
    exists to eliminate.
    """
    prog = acc.compile(source, compiler=compiler, num_gangs=num_gangs,
                       num_workers=num_workers,
                       vector_length=vector_length, pipeline=pipeline)
    kwargs: dict = dict(inputs or {})
    synthesize_inputs(prog, kwargs, size)
    ref = prog.run(watchdog_budget=watchdog_budget, **kwargs)

    kinds = [k for k, _, _ in FAULT_KINDS]
    outcomes: list[TrialOutcome] = []
    for t in range(trials):
        kind = kinds[t % len(kinds)]
        plan_seed = int(np.random.SeedSequence([seed, t]).generate_state(1)[0])
        injector = FaultPlan.single(kind, plan_seed).injector()
        strategy, attempts, error = "", 1, ""
        try:
            # injected bit-flips legitimately push NaN/inf through kernels;
            # the numeric warnings that triggers are expected, not a bug
            with warnings.catch_warnings(), np.errstate(all="ignore"):
                warnings.simplefilter("ignore", RuntimeWarning)
                res = prog.run(faults=injector, degrade=detect,
                               runs=runs if detect else 1,
                               max_attempts=max_attempts if detect else 1,
                               watchdog_budget=watchdog_budget, **kwargs)
        except ReproError as exc:
            category = "detected" if injector.records else "clean"
            error = type(exc).__name__
        else:
            category = _classify(res, ref, injector)
            strategy, attempts = res.strategy, res.attempts
        outcomes.append(TrialOutcome(
            trial=t, kind=kind, plan_seed=plan_seed, category=category,
            sites=injector.sites, strategy=strategy, attempts=attempts,
            error=error))
    return CampaignResult(seed=seed, trials=outcomes, detect=detect,
                          compiler=compiler)
