"""Seeded, serializable fault plans.

A :class:`FaultPlan` is the *configuration* of a fault-injection trial: a
seed plus per-site firing probabilities.  It is immutable and
JSON-serializable so a campaign (and its failures) can be replayed
exactly — the determinism contract is:

    same plan + same program + same inputs  ⇒  same fault sites,
    same corrupted bits, same final classification.

The plan itself holds no mutable state; call :meth:`FaultPlan.injector`
to obtain the per-run :class:`~repro.faults.injector.FaultInjector` that
consumes the seeded RNG stream and records what it injected.

Fault kinds (each gated by its own probability, default 0.0 = never):

* ``p_gload_flip``       — flip one bit of one lane of a global-memory read;
* ``p_sload_flip``       — same, for shared-memory reads;
* ``p_transfer_corrupt`` — flip one bit of one element of a host↔device copy;
* ``p_transfer_fail``    — spurious transfer failure
  (:class:`~repro.errors.TransferFaultError`, transient → retryable);
* ``p_launch_fail``      — spurious kernel-launch failure
  (:class:`~repro.errors.KernelLaunchError`, transient → retryable);
* ``p_stuck_warp``       — stuck-warp mode for one launch: loops whose exit
  condition fires never make progress, so the launch spins until the
  executor watchdog (or a bounds check) converts the hang into a typed
  error.

``max_faults`` (default 1) arms the injector for at most that many
injections per injector instance — single-fault trials keep campaign
classification crisp.  ``None`` means unlimited.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, fields

__all__ = ["FaultPlan", "FAULT_KINDS"]

#: the campaign's rotation of single-kind plans: (label, plan field, prob)
FAULT_KINDS: tuple[tuple[str, str, float], ...] = (
    ("gload-flip", "p_gload_flip", 0.02),
    ("sload-flip", "p_sload_flip", 0.05),
    ("transfer-corrupt", "p_transfer_corrupt", 0.5),
    ("transfer-fail", "p_transfer_fail", 0.5),
    ("launch-fail", "p_launch_fail", 0.5),
    ("stuck-warp", "p_stuck_warp", 0.5),
)


@dataclass(frozen=True)
class FaultPlan:
    """Immutable, seeded configuration for one fault-injection run."""

    seed: int = 0
    p_gload_flip: float = 0.0
    p_sload_flip: float = 0.0
    p_transfer_corrupt: float = 0.0
    p_transfer_fail: float = 0.0
    p_launch_fail: float = 0.0
    p_stuck_warp: float = 0.0
    #: stop injecting after this many faults (None = unlimited)
    max_faults: int | None = 1

    def __post_init__(self):
        for f in fields(self):
            if f.name.startswith("p_"):
                p = getattr(self, f.name)
                if not 0.0 <= p <= 1.0:
                    raise ValueError(
                        f"{f.name} must be a probability in [0, 1], got {p}")

    # -- serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "FaultPlan":
        known = {f.name for f in fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(f"unknown FaultPlan fields: {sorted(unknown)}")
        return cls(**d)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, s: str) -> "FaultPlan":
        return cls.from_dict(json.loads(s))

    # -- activation ------------------------------------------------------

    @property
    def any_enabled(self) -> bool:
        return any(getattr(self, f.name) > 0.0 for f in fields(self)
                   if f.name.startswith("p_"))

    def injector(self):
        """A fresh, armed :class:`~repro.faults.injector.FaultInjector`."""
        from repro.faults.injector import FaultInjector
        return FaultInjector(self)

    @classmethod
    def single(cls, kind: str, seed: int, *,
               max_faults: int | None = 1) -> "FaultPlan":
        """A plan enabling exactly one fault kind at its campaign default
        probability (``kind`` is a label from :data:`FAULT_KINDS`)."""
        for label, field_name, prob in FAULT_KINDS:
            if label == kind:
                return cls(seed=seed, max_faults=max_faults,
                           **{field_name: prob})
        raise ValueError(f"unknown fault kind {kind!r} "
                         f"(kinds: {[k for k, _, _ in FAULT_KINDS]})")
