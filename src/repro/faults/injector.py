"""The runtime fault injector: consumes a plan's RNG stream, records hits.

One :class:`FaultInjector` is threaded through a run (``Program.run(
faults=...)`` or ``CompiledKernel.run(faults=...)``); the simulator and
runtime query it at well-defined *sites*:

* :meth:`on_gload` / :meth:`on_sload` — after a memory read gathers its
  values, maybe flip one bit of one active lane (the register sees the
  corrupted value; the buffer is untouched — a transient read upset);
* :meth:`on_transfer` — before a host↔device copy lands, maybe corrupt
  one element or raise :class:`~repro.errors.TransferFaultError`;
* :meth:`on_launch` — at kernel-launch entry, maybe raise
  :class:`~repro.errors.KernelLaunchError`;
* :meth:`on_stuck_query` — at kernel-launch entry, maybe put the whole
  launch in stuck-warp mode (loop exits never fire; the watchdog or a
  bounds check converts the spin into a typed error).

Sites that are disabled in the plan (probability 0) consume **no** RNG
draws, so enabling one kind never perturbs another kind's sites — and a
run with no injector attached does no fault work at all.

Every injection appends a :class:`FaultRecord`; ``records`` is the ground
truth the campaign classifier and the determinism tests read.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import KernelLaunchError, TransferFaultError

__all__ = ["FaultInjector", "FaultRecord"]

_UINT_FOR_SIZE = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault: where, what, and the exact corruption applied."""

    index: int  # injection ordinal within this injector
    site: str   # e.g. "gload:a", "h2d:a", "launch:acc_region_main"
    kind: str   # "bitflip" | "transfer-corrupt" | "transfer-fail" | ...
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"index": self.index, "site": self.site, "kind": self.kind,
                "detail": dict(self.detail)}


class FaultInjector:
    """Mutable per-run state of one :class:`~repro.faults.plan.FaultPlan`."""

    def __init__(self, plan):
        self.plan = plan
        self._rng = np.random.default_rng(np.random.SeedSequence(plan.seed))
        self.records: list[FaultRecord] = []

    # -- arming ----------------------------------------------------------

    @property
    def armed(self) -> bool:
        """True while this injector may still inject (``max_faults`` cap)."""
        return (self.plan.max_faults is None
                or len(self.records) < self.plan.max_faults)

    def _fire(self, p: float) -> bool:
        # disabled sites must not consume RNG draws (site independence)
        if p <= 0.0 or not self.armed:
            return False
        return bool(self._rng.random() < p)

    def _record(self, site: str, kind: str, **detail) -> FaultRecord:
        rec = FaultRecord(len(self.records), site, kind, detail)
        self.records.append(rec)
        return rec

    # -- bit flips -------------------------------------------------------

    def _flip_lane(self, out: np.ndarray, lane: int, site: str) -> None:
        utype = _UINT_FOR_SIZE.get(out.dtype.itemsize)
        if utype is None:
            return
        bit = int(self._rng.integers(out.dtype.itemsize * 8))
        u = out.view(utype)
        u[lane] ^= utype(1) << utype(bit)
        self._record(site, "bitflip", lane=lane, bit=bit)

    def on_gload(self, buf: str, out: np.ndarray, mask: np.ndarray) -> None:
        """Maybe corrupt one active lane of a gathered global read."""
        if not self._fire(self.plan.p_gload_flip):
            return
        lanes = np.flatnonzero(mask)
        if lanes.size == 0:
            return
        lane = int(lanes[self._rng.integers(lanes.size)])
        self._flip_lane(out, lane, f"gload:{buf}")

    def on_sload(self, arr: str, out: np.ndarray, mask: np.ndarray) -> None:
        """Maybe corrupt one active lane of a gathered shared read."""
        if not self._fire(self.plan.p_sload_flip):
            return
        lanes = np.flatnonzero(mask)
        if lanes.size == 0:
            return
        lane = int(lanes[self._rng.integers(lanes.size)])
        self._flip_lane(out, lane, f"sload:{arr}")

    # -- transfers -------------------------------------------------------

    def on_transfer(self, label: str, data: np.ndarray,
                    direction: str) -> np.ndarray:
        """Pass a host↔device copy through the fault model.

        Returns the (possibly corrupted, always fresh) array to land, or
        raises :class:`TransferFaultError` for a spurious in-flight
        failure.  The caller's array is never mutated.
        """
        if self._fire(self.plan.p_transfer_fail):
            self._record(label, "transfer-fail", direction=direction)
            raise TransferFaultError(
                f"injected {direction} transfer failure on {label}")
        if self._fire(self.plan.p_transfer_corrupt):
            data = np.array(data, copy=True)
            flat = data.reshape(-1)
            elem = int(self._rng.integers(flat.size)) if flat.size else 0
            if flat.size:
                utype = _UINT_FOR_SIZE.get(flat.dtype.itemsize)
                if utype is not None:
                    bit = int(self._rng.integers(flat.dtype.itemsize * 8))
                    u = flat.view(utype)
                    u[elem] ^= utype(1) << utype(bit)
                    self._record(label, "transfer-corrupt",
                                 direction=direction, elem=elem, bit=bit)
        return data

    # -- launches --------------------------------------------------------

    def on_launch(self, kernel: str) -> None:
        """Maybe fail this launch spuriously (transient, retryable)."""
        if self._fire(self.plan.p_launch_fail):
            self._record(f"launch:{kernel}", "launch-fail")
            raise KernelLaunchError(
                f"injected spurious launch failure for kernel {kernel!r}")

    def on_stuck_query(self, kernel: str) -> bool:
        """Maybe put this launch in stuck-warp mode (loops never exit)."""
        if self._fire(self.plan.p_stuck_warp):
            self._record(f"stuck:{kernel}", "stuck-warp")
            return True
        return False

    # -- introspection ---------------------------------------------------

    @property
    def sites(self) -> tuple[str, ...]:
        """Fault sites hit so far, in injection order."""
        return tuple(r.site for r in self.records)

    def to_dict(self) -> dict:
        return {"plan": self.plan.to_dict(),
                "records": [r.to_dict() for r in self.records]}
