"""The runtime fault injector: consumes a plan's RNG stream, records hits.

One :class:`FaultInjector` is threaded through a run (``Program.run(
faults=...)`` or ``CompiledKernel.run(faults=...)``); the simulator and
runtime query it at well-defined *sites*:

* :meth:`on_gload` / :meth:`on_sload` — after a memory read gathers its
  values, maybe flip one bit of one active lane (the register sees the
  corrupted value; the buffer is untouched — a transient read upset);
* :meth:`on_transfer` — before a host↔device copy lands, maybe corrupt
  one element or raise :class:`~repro.errors.TransferFaultError`;
* :meth:`on_launch` — at kernel-launch entry, maybe raise
  :class:`~repro.errors.KernelLaunchError`;
* :meth:`on_stuck_query` — at kernel-launch entry, maybe put the whole
  launch in stuck-warp mode (loop exits never fire; the watchdog or a
  bounds check converts the spin into a typed error).

Sites that are disabled in the plan (probability 0) consume **no** RNG
draws, so enabling one kind never perturbs another kind's sites — and a
run with no injector attached does no fault work at all.

Stream structure: launch-level sites (:meth:`on_launch`,
:meth:`on_stuck_query`, :meth:`on_transfer`) draw from one *main* stream
seeded from the plan.  The per-access read sites (:meth:`on_gload` /
:meth:`on_sload`) draw from a **per-block substream** keyed
``(plan.seed, block)`` when the caller passes the executing block index.
A block performs the same sequence of reads whether the executor walks
blocks one at a time (``mode="reference"``) or advances them all together
(the batched default), so per-block substreams make the injected
(block, access, lane, bit) sites identical across executor modes and
``block_batch`` sizes.  Callers that pass no ``block`` (direct unit-test
drives) fall back to the main stream.  Caveat: the global ``max_faults``
cap disarms *all* streams once the record budget is spent, and the order
in which concurrent blocks reach their sites differs between executor
modes — cross-mode site identity therefore holds exactly when
``max_faults=None`` (or while the cap is not yet reached).

Every injection appends a :class:`FaultRecord`; ``records`` is the ground
truth the campaign classifier and the determinism tests read.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import KernelLaunchError, TransferFaultError
from repro.obs import timeline as _timeline

__all__ = ["FaultInjector", "FaultRecord"]

_UINT_FOR_SIZE = {1: np.uint8, 2: np.uint16, 4: np.uint32, 8: np.uint64}


@dataclass(frozen=True)
class FaultRecord:
    """One injected fault: where, what, and the exact corruption applied."""

    index: int  # injection ordinal within this injector
    site: str   # e.g. "gload:a", "h2d:a", "launch:acc_region_main"
    kind: str   # "bitflip" | "transfer-corrupt" | "transfer-fail" | ...
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {"index": self.index, "site": self.site, "kind": self.kind,
                "detail": dict(self.detail)}


class FaultInjector:
    """Mutable per-run state of one :class:`~repro.faults.plan.FaultPlan`."""

    def __init__(self, plan):
        self.plan = plan
        self._rng = np.random.default_rng(np.random.SeedSequence(plan.seed))
        #: lazily created per-block substreams for the read sites; keyed by
        #: absolute block index so the draw sequence a block sees does not
        #: depend on which other blocks run, or in what order
        self._block_rngs: dict[int, np.random.Generator] = {}
        self.records: list[FaultRecord] = []

    # -- arming ----------------------------------------------------------

    @property
    def armed(self) -> bool:
        """True while this injector may still inject (``max_faults`` cap)."""
        return (self.plan.max_faults is None
                or len(self.records) < self.plan.max_faults)

    def _rng_for(self, block: int | None) -> np.random.Generator:
        if block is None:
            return self._rng
        rng = self._block_rngs.get(block)
        if rng is None:
            seed = self.plan.seed if self.plan.seed is not None else 0
            rng = np.random.default_rng(
                np.random.SeedSequence([int(seed), int(block)]))
            self._block_rngs[block] = rng
        return rng

    def _fire(self, p: float, rng: np.random.Generator | None = None) -> bool:
        # disabled sites must not consume RNG draws (site independence)
        if p <= 0.0 or not self.armed:
            return False
        if rng is None:
            rng = self._rng
        return bool(rng.random() < p)

    def _record(self, site: str, kind: str, **detail) -> FaultRecord:
        rec = FaultRecord(len(self.records), site, kind, detail)
        self.records.append(rec)
        tl = _timeline.current()
        if tl is not None:
            tl.fault("faults", site, fault_kind=kind, index=rec.index,
                     **detail)
        return rec

    # -- bit flips -------------------------------------------------------

    def _flip_lane(self, out: np.ndarray, lane: int, site: str,
                   rng: np.random.Generator | None = None, **detail) -> None:
        utype = _UINT_FOR_SIZE.get(out.dtype.itemsize)
        if utype is None:
            return
        if rng is None:
            rng = self._rng
        bit = int(rng.integers(out.dtype.itemsize * 8))
        u = out.view(utype)
        u[lane] ^= utype(1) << utype(bit)
        self._record(site, "bitflip", lane=lane, bit=bit, **detail)

    def on_gload(self, buf: str, out: np.ndarray, mask: np.ndarray,
                 block: int | None = None) -> None:
        """Maybe corrupt one active lane of a gathered global read.

        ``block`` (the executing block's absolute index) selects the
        per-block substream; ``None`` uses the main stream.
        """
        rng = self._rng_for(block)
        if not self._fire(self.plan.p_gload_flip, rng):
            return
        lanes = np.flatnonzero(mask)
        if lanes.size == 0:
            return
        lane = int(lanes[rng.integers(lanes.size)])
        detail = {} if block is None else {"block": int(block)}
        self._flip_lane(out, lane, f"gload:{buf}", rng, **detail)

    def on_sload(self, arr: str, out: np.ndarray, mask: np.ndarray,
                 block: int | None = None) -> None:
        """Maybe corrupt one active lane of a gathered shared read."""
        rng = self._rng_for(block)
        if not self._fire(self.plan.p_sload_flip, rng):
            return
        lanes = np.flatnonzero(mask)
        if lanes.size == 0:
            return
        lane = int(lanes[rng.integers(lanes.size)])
        detail = {} if block is None else {"block": int(block)}
        self._flip_lane(out, lane, f"sload:{arr}", rng, **detail)

    # -- transfers -------------------------------------------------------

    def on_transfer(self, label: str, data: np.ndarray,
                    direction: str) -> np.ndarray:
        """Pass a host↔device copy through the fault model.

        Returns the (possibly corrupted, always fresh) array to land, or
        raises :class:`TransferFaultError` for a spurious in-flight
        failure.  The caller's array is never mutated.
        """
        if self._fire(self.plan.p_transfer_fail):
            self._record(label, "transfer-fail", direction=direction)
            raise TransferFaultError(
                f"injected {direction} transfer failure on {label}")
        if self._fire(self.plan.p_transfer_corrupt):
            data = np.array(data, copy=True)
            flat = data.reshape(-1)
            elem = int(self._rng.integers(flat.size)) if flat.size else 0
            if flat.size:
                utype = _UINT_FOR_SIZE.get(flat.dtype.itemsize)
                if utype is not None:
                    bit = int(self._rng.integers(flat.dtype.itemsize * 8))
                    u = flat.view(utype)
                    u[elem] ^= utype(1) << utype(bit)
                    self._record(label, "transfer-corrupt",
                                 direction=direction, elem=elem, bit=bit)
        return data

    # -- launches --------------------------------------------------------

    def on_launch(self, kernel: str) -> None:
        """Maybe fail this launch spuriously (transient, retryable)."""
        if self._fire(self.plan.p_launch_fail):
            self._record(f"launch:{kernel}", "launch-fail")
            raise KernelLaunchError(
                f"injected spurious launch failure for kernel {kernel!r}")

    def on_stuck_query(self, kernel: str) -> bool:
        """Maybe put this launch in stuck-warp mode (loops never exit)."""
        if self._fire(self.plan.p_stuck_warp):
            self._record(f"stuck:{kernel}", "stuck-warp")
            return True
        return False

    # -- introspection ---------------------------------------------------

    @property
    def sites(self) -> tuple[str, ...]:
        """Fault sites hit so far, in injection order."""
        return tuple(r.site for r in self.records)

    def to_dict(self) -> dict:
        return {"plan": self.plan.to_dict(),
                "records": [r.to_dict() for r in self.records]}
