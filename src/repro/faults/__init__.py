"""Deterministic fault injection and resilience campaigns.

The subsystem has three layers:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, the seeded,
  JSON-serializable description of *what* to inject and how often;
* :mod:`repro.faults.injector` — :class:`FaultInjector`, the live object
  the simulator calls at each fault site, recording every injection as a
  :class:`FaultRecord`;
* :mod:`repro.faults.campaign` — :func:`run_campaign`, which runs N
  seeded single-fault trials against a program and classifies each as
  clean / masked / detected / corrected-by-retry / degraded / escaped.

Injection is strictly opt-in: ``Program.run`` and ``CompiledKernel.run``
take ``faults=None`` by default and the fault-free path is bit-identical
to a build without this package (see ``tests/faults/test_zero_overhead``).
"""

from repro.faults.campaign import (CATEGORIES, CampaignResult,
                                   TrialOutcome, run_campaign,
                                   synthesize_inputs)
from repro.faults.injector import FaultInjector, FaultRecord
from repro.faults.plan import FAULT_KINDS, FaultPlan

__all__ = [
    "FaultPlan", "FaultInjector", "FaultRecord", "FAULT_KINDS",
    "CampaignResult", "TrialOutcome", "run_campaign",
    "synthesize_inputs", "CATEGORIES",
]
