"""User-facing OpenACC-style API.

Typical use::

    from repro import acc

    src = '''
    float a[n];
    int total = 0;
    #pragma acc parallel copyin(a)
    #pragma acc loop gang worker vector reduction(+:total)
    for (i = 0; i < n; i++)
        total += a[i];
    '''
    prog = acc.compile(src)
    result = prog.run(a=my_numpy_array)
    print(result.scalars["total"], result.modeled_ms)

``acc.compile`` accepts a ``compiler=`` profile — ``"openuh"`` (the paper's
implementation, default), ``"vendor-a"`` (CAPS-3.4-like baseline) or
``"vendor-b"`` (PGI-13.10-like baseline) — plus launch-geometry overrides.
"""

from repro.acc.compiler import compile, Program, RunResult  # noqa: A001
from repro.acc.profiles import CompilerProfile, get_profile, PROFILES
from repro.acc.launchconfig import resolve_geometry
from repro.acc.dataregion import DataRegion
from repro.acc.openmp import compile_omp

__all__ = [
    "compile",
    "Program",
    "RunResult",
    "CompilerProfile",
    "get_profile",
    "PROFILES",
    "resolve_geometry",
    "DataRegion",
    "compile_omp",
]
