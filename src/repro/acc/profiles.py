"""Compiler profiles: OpenUH and two commercial-compiler baselines.

The paper evaluates its OpenUH implementation against CAPS 3.4.0 and PGI
13.10.  Those compilers are closed source; the paper reports their observed
behaviour (Table 2's failures and compile errors, §3's strategy discussion).
We model each as a *profile*: a bundle of lowering-strategy options plus
mechanistic defect models that reproduce the reported failure pattern by
executing genuinely wrong code paths — see DESIGN.md's failure-model
inventory for the mapping from Table 2 cells to mechanisms.

To avoid implying these are the actual vendor implementations, the baselines
are named ``vendor-a`` (CAPS-like) and ``vendor-b`` (PGI-like).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.dtypes import DType
from repro.codegen.lowering import LoweringOptions

__all__ = ["CompilerProfile", "PROFILES", "get_profile",
           "OPENUH", "VENDOR_A", "VENDOR_B"]


@dataclass(frozen=True)
class CompilerProfile:
    """One compiler's strategy bundle and modeled defects."""

    name: str
    description: str
    lowering: LoweringOptions
    #: operators for which the reduction-span auto-detection (§3.2.1) runs;
    #: None = all operators.  vendor-a's '+' fast path trusts the clause
    #: placement literally, reproducing its RMP failures.
    infer_span_ops: frozenset[str] | None = None
    #: declared-unsupported reduction shapes → compile-error message.
    #: Called with (span, same_line, op_token, dtype).
    unsupported: Callable[[tuple[str, ...], bool, str, DType], str | None] \
        = lambda span, same_line, op, dtype: None
    #: data-clause defect: scalar reduction results are cached on the
    #: device and reused as the next run's initial value, ignoring host
    #: updates (reproduces the heat-equation non-convergence)
    stale_scalar_cache: bool = False
    #: default pass pipeline (see :mod:`repro.passes`): the defect-model
    #: vendor profiles pin ``minimal`` — running kernel-IR optimizations
    #: over deliberately wrong lowerings would be unfaithful to the
    #: baselines they reproduce.  Overridable per compile via the
    #: ``pipeline=`` argument or the ``REPRO_PASSES`` environment variable.
    pipeline: str = "optimized"

    def infers_span(self, op_token: str) -> bool:
        return self.infer_span_ops is None or op_token in self.infer_span_ops


OPENUH = CompilerProfile(
    name="openuh",
    description=(
        "The paper's implementation: window-sliding scheduling, row-layout "
        "vector reduction (Fig. 6(c)), first-row worker reduction "
        "(Fig. 8(c)), warp-aware sync elision, direct RMP, automatic "
        "reduction-span detection."
    ),
    lowering=LoweringOptions(),
)


VENDOR_A = CompilerProfile(
    name="vendor-a",
    description=(
        "CAPS-3.4.0-like baseline: window-sliding scheduling and row vector "
        "layout (performance comparable to OpenUH), duplicated-rows worker "
        "strategy (Fig. 8(b)), a barrier after every log-step iteration "
        "(no warp elision), and no span auto-detection on the '+' fast "
        "path (must annotate every level, per §3.2.1) — its RMP '+' "
        "failures in Table 2 follow.  Also models the data-clause defect "
        "that keeps the heat equation from converging (Fig. 12(a))."
    ),
    lowering=LoweringOptions(
        worker_strategy="duplicated",
        elide_warp_sync=False,
        gang_rmp_style="level_by_level",
    ),
    infer_span_ops=frozenset({"*", "max", "min", "&", "|", "^", "&&", "||"}),
    stale_scalar_cache=True,
    pipeline="minimal",
)


def _vendor_b_unsupported(span: tuple[str, ...], same_line: bool,
                          op: str, dtype: DType) -> str | None:
    if set(span) == {"gang", "worker", "vector"} and not same_line:
        if op == "+":
            return ("reduction spanning gang, worker and vector in "
                    "different loops is not supported for '+'")
        if op == "*" and dtype is not DType.INT:
            return ("reduction spanning gang, worker and vector in "
                    "different loops is not supported for '*' on "
                    f"{dtype.ctype}")
    return None


VENDOR_B = CompilerProfile(
    name="vendor-b",
    description=(
        "PGI-13.10-like baseline: blocking iteration scheduling "
        "(uncoalesced vector access, §3.1.3), no warp sync elision, "
        "level-by-level block stage before gang handoff, and a defective "
        "'+' fast path whose shared-memory partials are stored transposed "
        "but log-stepped in row layout — wrong whenever blockDim.y > 1 "
        "(Table 2's worker/vector/gang-worker '+' failures).  Declares the "
        "gang-worker-vector different-loop shapes of Table 2's CE cells "
        "unsupported."
    ),
    lowering=LoweringOptions(
        scheduling="blocking",
        elide_warp_sync=False,
        gang_rmp_style="level_by_level",
        bug_sum_layout_mismatch=True,
        strength_reduction=False,
        zero_init_partials=True,
    ),
    unsupported=_vendor_b_unsupported,
    pipeline="minimal",
)


PROFILES: dict[str, CompilerProfile] = {
    "openuh": OPENUH,
    "vendor-a": VENDOR_A,
    "vendor-b": VENDOR_B,
    # convenience aliases used in benchmark labels
    "caps-like": VENDOR_A,
    "pgi-like": VENDOR_B,
}


def get_profile(name: str | CompilerProfile) -> CompilerProfile:
    """Look up a profile by name (or pass one through)."""
    if isinstance(name, CompilerProfile):
        return name
    try:
        return PROFILES[name]
    except KeyError:
        raise ValueError(
            f"unknown compiler profile {name!r}; available: "
            f"{', '.join(sorted(set(PROFILES)))}") from None
