"""OpenMP 4.0 target-offload front: the paper's §6 extension.

The conclusion of the paper observes: *"A similar reduction methodology can
also be applied to other programming models such as OpenMP 4.0.  OpenMP
demonstrates two levels of parallelism and it just needs to ignore the
worker if our implementation strategy is used."*

This module operationalizes that: a directive-level translator maps OpenMP
``target``/``teams``/``distribute``/``parallel for`` constructs onto the
OpenACC constructs this compiler already lowers, with **teams → gang** and
**parallel for (threads) → vector** and the worker level fixed at 1:

=====================================================  =====================
OpenMP                                                 OpenACC equivalent
=====================================================  =====================
``target teams distribute parallel for``               ``parallel loop gang vector``
``target teams distribute``                            ``parallel loop gang``
``parallel for`` / ``for`` (inside a target region)    ``loop vector``
``simd``                                               folded into vector
``reduction(op:var)``                                  unchanged
``map(to: a)`` / ``map(from: b)`` / ``map(tofrom:)``   ``copyin`` / ``copyout`` / ``copy``
``map(alloc: t)``                                      ``create``
``num_teams(n)`` / ``thread_limit(n)``                 ``num_gangs`` / ``vector_length``
=====================================================  =====================

Use :func:`compile_omp` exactly like ``acc.compile``.
"""

from __future__ import annotations

import re

from repro.errors import DirectiveError
from repro.acc import compiler as _acc_compiler

__all__ = ["translate_omp_pragma", "translate_omp_source", "compile_omp"]

_MAP_KINDS = {"to": "copyin", "from": "copyout", "tofrom": "copy",
              "alloc": "create"}

_CLAUSE_RE = re.compile(
    r"(?P<name>[A-Za-z_]+)\s*(?:\((?P<args>[^()]*)\))?")


def translate_omp_pragma(text: str) -> str | None:
    """Translate one ``#pragma omp ...`` payload to an ``acc`` payload.

    Returns ``None`` for non-``omp`` pragmas.  Raises
    :class:`~repro.errors.DirectiveError` for OpenMP constructs outside the
    supported offload subset.
    """
    stripped = text.strip()
    if not stripped.startswith("omp"):
        return None
    rest = stripped[len("omp"):].strip()

    # peel the leading construct keywords
    words = rest.split()
    constructs = []
    i = 0
    while i < len(words) and words[i] in ("target", "teams", "distribute",
                                          "parallel", "for", "simd"):
        constructs.append(words[i])
        i += 1
    clause_text = " ".join(words[i:])

    cset = set(constructs)
    if not cset:
        raise DirectiveError(f"unsupported OpenMP directive: {text!r}")
    if cset - {"target", "teams", "distribute", "parallel", "for", "simd"}:
        raise DirectiveError(f"unsupported OpenMP construct in {text!r}")

    is_region = "target" in cset
    levels = []
    if {"teams", "distribute"} & cset:
        levels.append("gang")
    if {"parallel", "for", "simd"} & cset and "distribute" not in cset \
            or {"parallel", "for"} <= cset or "simd" in cset:
        # `parallel for` / `simd` bind threads -> vector
        if ("parallel" in cset and "for" in cset) or "simd" in cset:
            levels.append("vector")
    has_loop = bool(levels) and ("distribute" in cset or "for" in cset
                                 or "simd" in cset)

    # clauses
    acc_clauses: list[str] = []
    loop_clauses: list[str] = []
    for m in _CLAUSE_RE.finditer(clause_text):
        name, args = m.group("name"), m.group("args")
        if name == "map":
            if args is None or ":" not in args:
                raise DirectiveError(f"map clause needs a kind: {text!r}")
            kind, items = args.split(":", 1)
            kind = kind.strip()
            if kind not in _MAP_KINDS:
                raise DirectiveError(f"unsupported map kind {kind!r}")
            acc_clauses.append(f"{_MAP_KINDS[kind]}({items.strip()})")
        elif name == "reduction":
            loop_clauses.append(f"reduction({args})")
        elif name == "num_teams":
            acc_clauses.append(f"num_gangs({args})")
        elif name == "thread_limit":
            acc_clauses.append(f"vector_length({args})")
        elif name == "collapse":
            loop_clauses.append(f"collapse({args})")
        elif name == "private":
            loop_clauses.append(f"private({args})")
        elif name in ("shared", "default", "schedule", "nowait"):
            continue  # harmless under this execution model
        else:
            raise DirectiveError(
                f"unsupported OpenMP clause {name!r} in {text!r}")

    parts = ["acc"]
    if is_region:
        parts.append("parallel")
    if has_loop or not is_region:
        parts.append("loop")
        parts.extend(levels if levels else ["vector"])
        parts.extend(loop_clauses)
    elif loop_clauses:
        parts.extend(loop_clauses)
    parts.extend(acc_clauses)
    return " ".join(parts)


def translate_omp_source(source: str) -> str:
    """Rewrite every ``#pragma omp`` line of a source fragment to OpenACC.

    Handles ``\\`` line continuations; non-pragma lines pass through.
    """
    out_lines: list[str] = []
    lines = source.split("\n")
    i = 0
    while i < len(lines):
        line = lines[i]
        stripped = line.lstrip()
        if stripped.startswith("#pragma"):
            indent = line[:len(line) - len(stripped)]
            text = stripped[len("#pragma"):].strip()
            while text.rstrip().endswith("\\") and i + 1 < len(lines):
                text = text.rstrip()[:-1] + " " + lines[i + 1].strip()
                i += 1
            translated = translate_omp_pragma(text)
            if translated is not None:
                out_lines.append(f"{indent}#pragma {translated}")
            else:
                out_lines.append(line)
        else:
            out_lines.append(line)
        i += 1
    return "\n".join(out_lines)


def compile_omp(source: str, **kwargs) -> "_acc_compiler.Program":
    """Compile an OpenMP 4.0 target-offload fragment.

    Same keyword arguments as :func:`repro.acc.compile`; the worker level
    is pinned to 1 (two-level OpenMP parallelism, per the paper's §6).
    """
    kwargs.setdefault("num_workers", 1)
    return _acc_compiler.compile(translate_omp_source(source), **kwargs)
