"""Launch-geometry resolution.

Defaults follow the paper's evaluation setup (§4): vector length 128 (the
Kepler quad warp scheduler issues four 32-thread warps), 8 workers (1024
threads per block), and 192 gangs (12 usable SMs × 16 blocks each).

Precedence: directive clauses (``num_gangs``/``num_workers``/
``vector_length``) > ``acc.compile`` keyword arguments > defaults.
"""

from __future__ import annotations

from repro.errors import CompileError
from repro.gpu.device import DeviceProperties, K20C
from repro.codegen.mapping import LaunchGeometry

__all__ = ["DEFAULT_GEOMETRY", "resolve_geometry"]

DEFAULT_GEOMETRY = LaunchGeometry(num_gangs=192, num_workers=8,
                                  vector_length=128)


def resolve_geometry(region_gangs: int | None, region_workers: int | None,
                     region_vector: int | None, kw_gangs: int | None,
                     kw_workers: int | None, kw_vector: int | None,
                     device: DeviceProperties = K20C) -> LaunchGeometry:
    """Resolve the launch configuration and validate it against the device."""
    def pick(directive, kwarg, default):
        if directive is not None:
            return directive
        if kwarg is not None:
            return kwarg
        return default

    gangs = pick(region_gangs, kw_gangs, DEFAULT_GEOMETRY.num_gangs)
    workers = pick(region_workers, kw_workers, DEFAULT_GEOMETRY.num_workers)
    vector = pick(region_vector, kw_vector, DEFAULT_GEOMETRY.vector_length)
    if gangs < 1 or workers < 1 or vector < 1:
        raise CompileError(
            f"launch geometry must be positive, got gangs={gangs} "
            f"workers={workers} vector={vector}")
    if workers * vector > device.max_threads_per_block:
        raise CompileError(
            f"num_workers({workers}) x vector_length({vector}) = "
            f"{workers * vector} exceeds {device.max_threads_per_block} "
            "threads per block")
    return LaunchGeometry(num_gangs=gangs, num_workers=workers,
                          vector_length=vector)
