"""The compiler facade: source → :class:`Program` → results.

``acc.compile`` runs the whole pipeline — parse, build IR, analyze
reductions (with the profile's span-inference policy), check the profile's
declared-unsupported shapes, lower with the profile's strategy options, and
pre-compile every kernel for the simulator.  ``Program.run`` executes the
launch plan over a fresh data environment and returns outputs plus modeled
timing.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, replace

import numpy as np

from repro.errors import UnsupportedReductionError
from repro.frontend.cparser import parse_region
from repro.gpu.costmodel import CostModel, TimingLedger
from repro.gpu.device import DeviceProperties, K20C
from repro.gpu.events import KernelStats
from repro.gpu.executor import CompiledKernel
from repro.gpu.kernelir import dump as dump_kernel
from repro.ir.analysis import analyze_region
from repro.ir.builder import build_region
from repro.codegen.lowering import LoweredProgram, lower_region
from repro.acc.launchconfig import resolve_geometry
from repro.acc.profiles import CompilerProfile, get_profile

__all__ = ["compile", "Program", "RunResult"]


@dataclass
class RunResult:
    """Outcome of one ``Program.run``."""

    outputs: dict[str, np.ndarray]  # copyout/copy/present arrays
    scalars: dict[str, np.generic]  # gang-reduction results
    ledger: TimingLedger
    kernel_stats: dict[str, KernelStats]

    @property
    def modeled_us(self) -> float:
        return self.ledger.total_us

    @property
    def modeled_ms(self) -> float:
        return self.ledger.total_ms

    @property
    def kernel_ms(self) -> float:
        """Device-kernel time only (excludes PCIe transfers) — the metric
        Table 2 compares, since transfers are identical across compilers."""
        return sum(t for label, t in self.ledger.entries
                   if label.startswith("kernel:")) / 1000.0

    @property
    def transfer_ms(self) -> float:
        return self.modeled_ms - self.kernel_ms


class Program:
    """A compiled OpenACC region, runnable on the simulated device."""

    def __init__(self, lowered: LoweredProgram, profile: CompilerProfile,
                 device: DeviceProperties):
        self.lowered = lowered
        self.profile = profile
        self.device = device
        self.region = lowered.plan.region
        self._cost = CostModel(device)
        self._compiled = {k.name: CompiledKernel(k, device)
                          for k in lowered.kernels}
        # vendor-a data-clause defect state (§4, heat equation):
        # reduction scalars cached on "the device" across runs
        self._stale_cache: dict[str, np.generic] = {}
        # the lowering-strategy fingerprint the profiler attaches to
        # every kernel record of this program
        o = lowered.options
        self._strategy = {
            "scheduling": o.scheduling,
            "vector_layout": o.vector_layout,
            "vector_strategy": o.vector_strategy,
            "worker_strategy": o.worker_strategy,
            "reduction_memory": o.reduction_memory,
            "block_rmp_style": o.block_rmp_style,
            "gang_rmp_style": o.gang_rmp_style,
            "gang_partial_style": o.gang_partial_style,
            "elide_warp_sync": o.elide_warp_sync,
        }

    # -- introspection -------------------------------------------------

    @property
    def geometry(self):
        return self.lowered.geometry

    def dump_kernels(self) -> str:
        """Pseudo-CUDA text of every generated kernel (for inspection)."""
        return "\n\n".join(dump_kernel(k) for k in self.lowered.kernels)

    # -- execution -------------------------------------------------------

    def _record_kernel(self, profiler, name: str, stats: KernelStats,
                       timing, grid_dim: int,
                       block_dim: tuple[int, int]) -> None:
        profiler.record_kernel(name, stats, timing, grid_dim=grid_dim,
                               block_dim=block_dim, device=self.device,
                               compiler=self.profile.name,
                               strategy=self._strategy)

    def run(self, *, trace: bool = False, data_region=None, profiler=None,
            **kwargs) -> RunResult:
        """Execute the region: transfers, main kernel, finish kernels.

        Pass every region array as a NumPy array (dtype must match the
        declaration) and every unbound scalar as a keyword argument.
        ``data_region`` may name an active
        :class:`~repro.acc.dataregion.DataRegion` — arrays it holds are
        *present* on the device and need not be passed (and are not
        transferred per run).

        ``trace=True`` enables per-access
        :class:`~repro.gpu.events.TraceEvent` collection on every kernel
        launch of this run (plumbed to
        :meth:`~repro.gpu.executor.CompiledKernel.run`).  ``profiler`` (a
        :class:`repro.obs.Profiler`) receives transfer spans, one
        :class:`~repro.obs.record.KernelRecord` per launch, and a
        ``reduction``-finalize span per gang reduction; when ``None``
        (the default) no profiling work happens at all.
        """
        from repro.acc.runtime import DataEnv

        env = DataEnv(region=self.region, device=self.device,
                      data_region=data_region, profiler=profiler)
        env.bind(kwargs)

        # the vendor-a defect: device-resident reduction scalars ignore
        # host-side reinitialization between runs of the same program
        if self.profile.stale_scalar_cache:
            for g in self.lowered.gang_reductions:
                if g.var in self._stale_cache:
                    env.scalars[g.var] = self._stale_cache[g.var]

        run_span = (profiler.region(f"run:{self.lowered.main_kernel.name}",
                                    "run", compiler=self.profile.name)
                    if profiler is not None else nullcontext())
        with run_span:
            env.enter()
            for sb in self.lowered.scratch:
                fill = None
                if sb.fill_identity_of is not None:
                    from repro.codegen.reduction.operators import get_operator
                    fill = get_operator(sb.fill_identity_of).identity(sb.dtype)
                env.alloc_scratch(sb.name, sb.dtype, sb.size, fill=fill)

            stats: dict[str, KernelStats] = {}
            geom = self.lowered.geometry
            fbs0 = self.lowered.options.finish_block_size
            for g in self.lowered.gang_reductions:
                if g.init_kernel is None:
                    continue
                ck = self._compiled[g.init_kernel.name]
                ist = ck.run(env.gmem, g.init_grid, (fbs0, 1), params={},
                             trace=trace)
                stats[g.init_kernel.name] = ist
                itb = self._cost.kernel_time(ist)
                env.ledger.add(f"kernel:{g.init_kernel.name}", itb.total_us)
                if profiler is not None:
                    self._record_kernel(profiler, g.init_kernel.name, ist,
                                        itb, g.init_grid, (fbs0, 1))
            main = self._compiled[self.lowered.main_kernel.name]
            st = main.run(env.gmem, geom.num_gangs,
                          (geom.vector_length, geom.num_workers),
                          params=env.scalars, trace=trace)
            stats[self.lowered.main_kernel.name] = st
            mtb = self._cost.kernel_time(st)
            env.ledger.add(f"kernel:{self.lowered.main_kernel.name}",
                           mtb.total_us)
            if profiler is not None:
                self._record_kernel(profiler, self.lowered.main_kernel.name,
                                    st, mtb, geom.num_gangs,
                                    (geom.vector_length, geom.num_workers))

            scalars: dict[str, np.generic] = {}
            fbs = self.lowered.options.finish_block_size
            for g in self.lowered.gang_reductions:
                fin_span = (profiler.region(f"finalize:{g.var}", "reduction",
                                            var=g.var, op=g.op.token)
                            if profiler is not None else nullcontext())
                with fin_span:
                    if g.finish_kernel is not None:
                        ck = self._compiled[g.finish_kernel.name]
                        fst = ck.run(env.gmem, 1, (fbs, 1), params={},
                                     trace=trace)
                        stats[g.finish_kernel.name] = fst
                        ftb = self._cost.kernel_time(fst)
                        env.ledger.add(f"kernel:{g.finish_kernel.name}",
                                       ftb.total_us)
                        if profiler is not None:
                            self._record_kernel(profiler,
                                                g.finish_kernel.name,
                                                fst, ftb, 1, (fbs, 1))
                    device_total = env.read_result(g.result_buf)
                host_init = env.scalars[g.var]
                final = g.op.np_combine(host_init, device_total, g.dtype)
                scalars[g.var] = final
                if self.profile.stale_scalar_cache:
                    self._stale_cache[g.var] = final

            outputs = env.exit_outputs()
            env.cleanup()
        return RunResult(outputs=outputs, scalars=scalars,
                         ledger=env.ledger, kernel_stats=stats)


def compile(source: str, *, compiler: str | CompilerProfile = "openuh",
            num_gangs: int | None = None, num_workers: int | None = None,
            vector_length: int | None = None,
            device: DeviceProperties = K20C,
            array_dtypes: dict[str, str] | None = None,
            profiler=None, **option_overrides) -> Program:
    """Compile an OpenACC source fragment for the simulated device.

    ``compiler`` selects a profile (``openuh``, ``vendor-a``, ``vendor-b``);
    extra keyword arguments override individual
    :class:`~repro.codegen.lowering.LoweringOptions` fields (used by the
    ablation benchmarks, e.g. ``scheduling="blocking"``).  ``profiler`` (a
    :class:`repro.obs.Profiler`) records one wall-time span per pipeline
    phase on the host trace track.
    """
    def _phase(name: str):
        return (profiler.phase(name) if profiler is not None
                else nullcontext())

    profile = get_profile(compiler)
    with _phase("parse"):
        cregion = parse_region(source)
    with _phase("build-ir"):
        region = build_region(cregion, array_dtypes=array_dtypes)
        if region.kind == "kernels":
            # §2.1: the kernels construct leaves scheduling to the compiler
            from repro.ir.autopar import auto_parallelize
            region = auto_parallelize(region)
    geom = resolve_geometry(region.num_gangs, region.num_workers,
                            region.vector_length, num_gangs, num_workers,
                            vector_length, device)
    with _phase("analyze"):
        plan = analyze_region(region, num_workers=geom.num_workers,
                              vector_length=geom.vector_length,
                              infer_span=profile.infers_span)

        for info in plan.all_reductions:
            reason = profile.unsupported(info.span, info.same_line,
                                         info.op.token, info.dtype)
            if reason:
                raise UnsupportedReductionError(
                    f"{profile.name}: {reason} (variable {info.var!r})")

    opts = profile.lowering
    if option_overrides:
        opts = replace(opts, **option_overrides)
    with _phase("lower"):
        lowered = lower_region(plan, geom, opts)
    with _phase("compile-kernels"):
        return Program(lowered, profile, device)
