"""The compiler facade: source → :class:`Program` → results.

``acc.compile`` runs the whole pipeline — parse, build IR, analyze
reductions (with the profile's span-inference policy), check the profile's
declared-unsupported shapes, lower with the profile's strategy options, and
pre-compile every kernel for the simulator.  ``Program.run`` executes the
launch plan over a fresh data environment and returns outputs plus modeled
timing.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field, replace

import numpy as np

from repro.errors import (
    DegradedExecutionError, SilentCorruptionError, SimulationError,
    TransientFaultError, WatchdogTimeoutError,
)
from repro.gpu.costmodel import CostModel, TimingLedger
from repro.gpu.device import DeviceProperties, K20C
from repro.gpu.events import KernelStats
from repro.gpu.executor import CompiledKernel
from repro.gpu.kernelir import dump as dump_kernel
from repro.codegen.lowering import LoweredProgram, lower_region
from repro.acc.profiles import CompilerProfile, get_profile
from repro.obs import timeline as _timeline
from repro.obs import trace as _reqtrace

__all__ = ["compile", "Program", "RunResult", "FALLBACK_CHAIN"]


#: The declared graceful-degradation chain (see docs/robustness.md).
#: Each entry is ``(strategy name, LoweringOptions overrides)`` applied on
#: top of the program's compiled options; levels are tried in order after
#: the primary lowering fails, ending at the sequential host interpreter
#: (``None`` overrides), which has no kernels to break.  The overrides pin
#: every reduction-strategy knob to a progressively more conservative
#: setting and clear the modeled defect flags.
FALLBACK_CHAIN: tuple = (
    ("shared-tree", dict(
        scheduling="window", vector_layout="row", vector_strategy="logstep",
        worker_strategy="first_row", elide_warp_sync=False,
        reduction_memory="shared", block_rmp_style="direct",
        gang_rmp_style="direct", gang_partial_style="buffer",
        bug_sum_layout_mismatch=False)),
    ("atomic", dict(
        scheduling="window", vector_layout="row", vector_strategy="logstep",
        worker_strategy="first_row", elide_warp_sync=False,
        reduction_memory="global", block_rmp_style="direct",
        gang_rmp_style="direct", gang_partial_style="atomic",
        bug_sum_layout_mismatch=False)),
    ("host-sequential", None),
)


@dataclass
class RunResult:
    """Outcome of one ``Program.run``."""

    outputs: dict[str, np.ndarray]  # copyout/copy/present arrays
    scalars: dict[str, np.generic]  # gang-reduction results
    ledger: TimingLedger
    kernel_stats: dict[str, KernelStats]
    #: which lowering strategy ultimately served the answer ("primary"
    #: unless graceful degradation walked the fallback chain)
    strategy: str = "primary"
    #: how many execution attempts the transient-fault retry loop used
    attempts: int = 1
    #: carried DegradedExecutionError instances, one per degradation event
    #: (strategy failures walked past, redundant-vote corrections)
    degradations: list = field(default_factory=list)

    @property
    def degraded(self) -> bool:
        return bool(self.degradations) or self.strategy != "primary"

    @property
    def modeled_us(self) -> float:
        return self.ledger.total_us

    @property
    def modeled_ms(self) -> float:
        return self.ledger.total_ms

    @property
    def kernel_ms(self) -> float:
        """Device-kernel time only (excludes PCIe transfers) — the metric
        Table 2 compares, since transfers are identical across compilers."""
        return sum(t for label, t in self.ledger.entries
                   if label.startswith("kernel:")) / 1000.0

    @property
    def transfer_ms(self) -> float:
        return self.modeled_ms - self.kernel_ms


class Program:
    """A compiled OpenACC region, runnable on the simulated device."""

    def __init__(self, lowered: LoweredProgram, profile: CompilerProfile,
                 device: DeviceProperties, *, pipeline: str = "",
                 autotune: dict | None = None, pass_records=None,
                 trace_src: dict | None = None):
        self.lowered = lowered
        self.profile = profile
        self.device = device
        self.region = lowered.plan.region
        #: name of the pass pipeline that produced the kernels ("" for
        #: direct lower_region callers, e.g. the fallback chain)
        self.pipeline = pipeline
        #: per-variable autotune decisions/estimates (optimized pipeline)
        self.autotune = dict(autotune or {})
        #: PassRecord list from the pass manager (``capture_ir=True``
        #: compiles carry before/after listings for explain/--dump-ir)
        self.pass_records = list(pass_records or [])
        #: kernel name -> trace-executor NumPy source from the
        #: trace-codegen pass (or a serve-cache payload); eligible
        #: kernels only — see :mod:`repro.passes.tracegen`
        self.trace_src = dict(trace_src or {})
        self._cost = CostModel(device)
        self._compiled = {k.name: CompiledKernel(k, device)
                          for k in lowered.kernels}
        for name, src in self.trace_src.items():
            ck = self._compiled.get(name)
            if ck is not None:
                ck.attach_trace_source(src)
        # vendor-a data-clause defect state (§4, heat equation):
        # reduction scalars cached on "the device" across runs
        self._stale_cache: dict[str, np.generic] = {}
        # the lowering-strategy fingerprint the profiler attaches to
        # every kernel record of this program
        o = lowered.options
        self._strategy = {
            "scheduling": o.scheduling,
            "vector_layout": o.vector_layout,
            "vector_strategy": o.vector_strategy,
            "worker_strategy": o.worker_strategy,
            "reduction_memory": o.reduction_memory,
            "block_rmp_style": o.block_rmp_style,
            "gang_rmp_style": o.gang_rmp_style,
            "gang_partial_style": o.gang_partial_style,
            "elide_warp_sync": o.elide_warp_sync,
        }
        if pipeline:
            self._strategy["pipeline"] = pipeline
        autotuned = {var: {fld: dec["choice"] for fld, dec in rec.items()
                          if isinstance(dec, dict) and "choice" in dec}
                     for var, rec in self.autotune.items()}
        autotuned = {var: c for var, c in autotuned.items() if c}
        if autotuned:
            self._strategy["autotune"] = autotuned

    # -- introspection -------------------------------------------------

    @property
    def geometry(self):
        return self.lowered.geometry

    @property
    def strategy(self) -> dict:
        """The lowering-strategy fingerprint the profiler attaches to
        every kernel record (includes ``pipeline`` and per-variable
        ``autotune`` choices when the pass pipeline recorded them)."""
        return dict(self._strategy)

    def dump_kernels(self) -> str:
        """Pseudo-CUDA text of every generated kernel (for inspection)."""
        return "\n\n".join(dump_kernel(k) for k in self.lowered.kernels)

    # -- execution -------------------------------------------------------

    def _record_kernel(self, profiler, name: str, stats: KernelStats,
                       timing, grid_dim: int, block_dim: tuple[int, int],
                       executor_mode: str | None = None) -> None:
        profiler.record_kernel(name, stats, timing, grid_dim=grid_dim,
                               block_dim=block_dim, device=self.device,
                               compiler=self.profile.name,
                               strategy=self._strategy,
                               executor=executor_mode or "batched",
                               kernel=self._compiled[name].kernel)

    def _emit_kernel_span(self, name: str, timing, grid_dim: int,
                          executor_mode: str | None) -> None:
        """Mirror one launch onto the telemetry bus (modeled duration)."""
        tl = _timeline.current()
        if tl is not None:
            tl.span("gpu", f"kernel:{name}", timing.total_us,
                    grid=grid_dim, executor=executor_mode or "batched",
                    compiler=self.profile.name)

    def run(self, *, trace: bool = False, data_region=None, profiler=None,
            faults=None, watchdog_budget: int | None = None,
            executor_mode: str | None = None, block_batch: int | None = None,
            attribution: bool = False,
            max_attempts: int = 3, backoff_us: float = 100.0,
            backoff_cap_us: float = 1600.0, runs: int = 1, validate=None,
            degrade: bool = False, **kwargs) -> RunResult:
        """Execute the region: transfers, main kernel, finish kernels.

        Pass every region array as a NumPy array (dtype must match the
        declaration) and every unbound scalar as a keyword argument.
        ``data_region`` may name an active
        :class:`~repro.acc.dataregion.DataRegion` — arrays it holds are
        *present* on the device and need not be passed (and are not
        transferred per run).

        ``trace=True`` enables per-access
        :class:`~repro.gpu.events.TraceEvent` collection on every kernel
        launch of this run (plumbed to
        :meth:`~repro.gpu.executor.CompiledKernel.run`).  ``profiler`` (a
        :class:`repro.obs.Profiler`) receives transfer spans, one
        :class:`~repro.obs.record.KernelRecord` per launch, and a
        ``reduction``-finalize span per gang reduction; when ``None``
        (the default) no profiling work happens at all.

        Robustness knobs (all opt-in; with every one at its default the
        call takes the exact pre-existing fast path — the pinned
        zero-overhead contract, mirroring the profiler's pure-observer
        guarantee):

        * ``faults`` — a :class:`repro.faults.FaultPlan` or armed
          :class:`repro.faults.FaultInjector`; threads seeded fault
          injection through transfers and every kernel launch.
        * ``watchdog_budget`` — per-launch loop-step budget override
          (``None`` = executor default; ``0``/negative disables).
        * ``max_attempts`` / ``backoff_us`` / ``backoff_cap_us`` — retry
          policy for faults classified transient (launch/transfer): up to
          ``max_attempts`` tries with capped exponential *modeled* backoff
          charged to the ledger as ``retry:backoff`` entries.
        * ``runs`` — redundant-execution voting: execute the program
          ``runs`` times and serve the bitwise-majority result; detects
          silent data corruption, which raises no exception by itself.
          Requires an idempotent program (no stale-cache profiles).
        * ``validate`` — callable ``validate(result) -> bool``; a False
          verdict is treated as detected corruption.
        * ``degrade=True`` — graceful strategy degradation: when a
          lowering strategy raises a :class:`SimulationError`, exhausts
          its retries, or fails validation/voting, recompile down the
          declared :data:`FALLBACK_CHAIN` and serve the answer from the
          first strategy that survives, recording the degradation on the
          result and in ``profiler.metrics``.

        ``executor_mode`` (``"batched"`` default / ``"reference"``) and
        ``block_batch`` select the simulator's executor path for every
        launch of this run (see
        :meth:`repro.gpu.executor.CompiledKernel.run`); both paths are
        pinned bit-identical, so this is a performance knob only.

        ``attribution=True`` fills a per-statement
        :class:`~repro.gpu.events.AttributionTable` on every launch's
        ``stats.attribution`` (both executors produce bit-identical
        tables) — the input to the annotated-listing and roofline views
        in :mod:`repro.obs.attribution` / :mod:`repro.obs.roofline`.
        Off by default: the run path allocates nothing for it when
        disabled.
        """
        if not _timeline.trace_active():
            return self._run_dispatch(
                trace=trace, data_region=data_region, profiler=profiler,
                faults=faults, watchdog_budget=watchdog_budget,
                executor_mode=executor_mode, block_batch=block_batch,
                attribution=attribution, max_attempts=max_attempts,
                backoff_us=backoff_us, backoff_cap_us=backoff_cap_us,
                runs=runs, validate=validate, degrade=degrade,
                kwargs=kwargs)
        # request tracing: a run inside an active context (a serve
        # dispatch) becomes a child span; a top-level run roots its own
        # trace — either way every kernel/transfer/fault event emitted
        # below lands in this run's subtree
        with _reqtrace.span("acc", f"run:{self.lowered.main_kernel.name}",
                            compiler=self.profile.name):
            return self._run_dispatch(
                trace=trace, data_region=data_region, profiler=profiler,
                faults=faults, watchdog_budget=watchdog_budget,
                executor_mode=executor_mode, block_batch=block_batch,
                attribution=attribution, max_attempts=max_attempts,
                backoff_us=backoff_us, backoff_cap_us=backoff_cap_us,
                runs=runs, validate=validate, degrade=degrade,
                kwargs=kwargs)

    def _run_dispatch(self, *, trace, data_region, profiler, faults,
                      watchdog_budget, executor_mode, block_batch,
                      attribution, max_attempts, backoff_us,
                      backoff_cap_us, runs, validate, degrade,
                      kwargs) -> RunResult:
        injector = _as_injector(faults)
        if (injector is None and runs <= 1 and validate is None
                and not degrade):
            # the pinned fast path: bit-identical to the pre-faults runtime
            return self._execute(trace=trace, data_region=data_region,
                                 profiler=profiler,
                                 watchdog_budget=watchdog_budget,
                                 executor_mode=executor_mode,
                                 block_batch=block_batch,
                                 attribution=attribution,
                                 kwargs=kwargs)
        return self._run_hardened(
            trace=trace, data_region=data_region, profiler=profiler,
            injector=injector, watchdog_budget=watchdog_budget,
            executor_mode=executor_mode, block_batch=block_batch,
            attribution=attribution,
            max_attempts=max_attempts, backoff_us=backoff_us,
            backoff_cap_us=backoff_cap_us, runs=runs, validate=validate,
            degrade=degrade, kwargs=kwargs)

    # -- the plain execution path (one attempt, one strategy) ------------

    def _execute(self, *, trace: bool, data_region, profiler,
                 faults=None, watchdog_budget: int | None = None,
                 executor_mode: str | None = None,
                 block_batch: int | None = None,
                 attribution: bool = False,
                 kwargs: dict) -> RunResult:
        from repro.acc.runtime import DataEnv

        env = DataEnv(region=self.region, device=self.device,
                      data_region=data_region, profiler=profiler,
                      faults=faults)
        env.bind(kwargs)
        try:
            return self._execute_bound(env, trace=trace, profiler=profiler,
                                       faults=faults,
                                       watchdog_budget=watchdog_budget,
                                       executor_mode=executor_mode,
                                       block_batch=block_batch,
                                       attribution=attribution)
        except BaseException:
            # free this run's allocations so a retry (or the next run in
            # a shared data region) can allocate the same names again
            env.cleanup()
            raise

    def _launch(self, env, stats: dict, name: str, grid: int,
                block: tuple[int, int], params, *, trace, profiler, faults,
                watchdog_budget, executor_mode, block_batch,
                attribution) -> KernelStats:
        """Run one kernel launch: execute, charge the ledger, mirror the
        telemetry span, and record on the profiler."""
        ck = self._compiled[name]
        st = ck.run(env.gmem, grid, block, params=params, trace=trace,
                    faults=faults, watchdog_budget=watchdog_budget,
                    mode=executor_mode, block_batch=block_batch,
                    attribution=attribution)
        stats[name] = st
        tb = self._cost.kernel_time(st)
        env.ledger.add(f"kernel:{name}", tb.total_us)
        self._emit_kernel_span(name, tb, grid, executor_mode)
        if profiler is not None:
            self._record_kernel(profiler, name, st, tb, grid, block,
                                executor_mode=ck.effective_mode(
                                    executor_mode, grid, env.gmem, faults,
                                    trace_events=trace))
        return st

    def _finalize_reduction(self, g, env, scalars: dict, stats: dict,
                            fbs: int, lk: dict) -> None:
        """Finish one gang reduction: launch its finish kernel (if any),
        read the device result, and fold it into the host value.  The
        finished value is written back into the scalar environment so a
        later kernel stage's parameters deliver it."""
        profiler = lk["profiler"]
        fin_span = (profiler.region(f"finalize:{g.var}", "reduction",
                                    var=g.var, op=g.op.token)
                    if profiler is not None else nullcontext())
        with fin_span:
            if g.finish_kernel is not None:
                self._launch(env, stats, g.finish_kernel.name, 1, (fbs, 1),
                             {}, **lk)
            device_total = env.read_result(g.result_buf)
            device_index = (env.read_result(g.index_result_buf)
                            if g.is_pair else None)
        if g.is_pair:
            # pair fold: the device pair beats the host-initial pair on
            # strict value comparison, ties toward the smaller index —
            # the same take rule the kernels use
            host_v, host_i = env.scalars[g.var], env.scalars[g.index_var]
            better = (device_total > host_v if g.kind == "argmax"
                      else device_total < host_v)
            if better or (device_total == host_v and device_index < host_i):
                final_v, final_i = device_total, device_index
            else:
                final_v, final_i = host_v, host_i
            scalars[g.var] = g.dtype.np.type(final_v)
            scalars[g.index_var] = g.index_dtype.np.type(final_i)
            env.scalars[g.var] = scalars[g.var]
            env.scalars[g.index_var] = scalars[g.index_var]
            if self.profile.stale_scalar_cache:
                self._stale_cache[g.var] = scalars[g.var]
                self._stale_cache[g.index_var] = scalars[g.index_var]
            return
        host_init = env.scalars[g.var]
        final = g.op.np_combine(host_init, device_total, g.dtype)
        scalars[g.var] = final
        env.scalars[g.var] = final
        if self.profile.stale_scalar_cache:
            self._stale_cache[g.var] = final

    def _execute_bound(self, env, *, trace: bool, profiler, faults,
                       watchdog_budget: int | None,
                       executor_mode: str | None = None,
                       block_batch: int | None = None,
                       attribution: bool = False) -> RunResult:

        # the vendor-a defect: device-resident reduction scalars ignore
        # host-side reinitialization between runs of the same program
        if self.profile.stale_scalar_cache:
            for g in self.lowered.gang_reductions:
                if g.var in self._stale_cache:
                    env.scalars[g.var] = self._stale_cache[g.var]
                if g.index_var is not None \
                        and g.index_var in self._stale_cache:
                    env.scalars[g.index_var] = self._stale_cache[g.index_var]

        run_span = (profiler.region(f"run:{self.lowered.main_kernel.name}",
                                    "run", compiler=self.profile.name)
                    if profiler is not None else nullcontext())
        with run_span:
            env.enter()
            for sb in self.lowered.scratch:
                fill = None
                if sb.fill_identity_of is not None:
                    from repro.codegen.reduction.operators import get_operator
                    fill = get_operator(sb.fill_identity_of).identity(sb.dtype)
                env.alloc_scratch(sb.name, sb.dtype, sb.size, fill=fill)

            stats: dict[str, KernelStats] = {}
            geom = self.lowered.geometry
            fbs = self.lowered.options.finish_block_size
            lk = dict(trace=trace, profiler=profiler, faults=faults,
                      watchdog_budget=watchdog_budget,
                      executor_mode=executor_mode, block_batch=block_batch,
                      attribution=attribution)
            for g in self.lowered.gang_reductions:
                if g.init_kernel is None:
                    continue
                self._launch(env, stats, g.init_kernel.name, g.init_grid,
                             (fbs, 1), {}, **lk)

            scalars: dict[str, np.generic] = {}
            block = (geom.vector_length, geom.num_workers)
            deferred = []
            for si in range(self.lowered.num_stages):
                kern = self.lowered.stage_kernel(si)
                self._launch(env, stats, kern.name, geom.num_gangs, block,
                             env.scalars, **lk)
                # finalize this stage's reductions before the next stage
                # launches: the host fold writes the finished value into
                # the scalar environment, so the next stage's parameters
                # deliver it.  Cascade-fused reductions defer to the end:
                # their consumer stage replays the finish combine itself
                # and stores the raw device total to the result buffer,
                # which the host only needs after all stages ran.
                for g in self.lowered.gang_reductions:
                    if g.stage != si:
                        continue
                    if g.cascade_fused:
                        deferred.append(g)
                        continue
                    self._finalize_reduction(g, env, scalars, stats, fbs, lk)
            for g in deferred:
                self._finalize_reduction(g, env, scalars, stats, fbs, lk)

            outputs = env.exit_outputs()
            env.cleanup()
        return RunResult(outputs=outputs, scalars=scalars,
                         ledger=env.ledger, kernel_stats=stats)

    # -- hardening: retry, voting, graceful strategy degradation ---------

    def _run_hardened(self, *, trace, data_region, profiler, injector,
                      watchdog_budget, max_attempts, backoff_us,
                      backoff_cap_us, runs, validate, degrade,
                      kwargs, executor_mode=None,
                      block_batch=None, attribution=False) -> RunResult:
        metrics = profiler.metrics if profiler is not None else None
        injected_before = len(injector.records) if injector is not None \
            else 0
        chain: list[tuple[str, dict | None]] = [("primary", {})]
        if degrade:
            for name, overrides in FALLBACK_CHAIN:
                chain.append((name, overrides))

        degradations: list[DegradedExecutionError] = []
        result = None
        last_exc: BaseException | None = None
        for level, (sname, overrides) in enumerate(chain):
            target = self
            if level > 0 and overrides is not None:
                target = self._fallback_program(sname, overrides)
                if target is None:  # identical to the primary lowering
                    continue
            try:
                if overrides is None:  # the host-sequential last resort
                    if data_region is not None:
                        raise (last_exc if last_exc is not None else
                               SimulationError(
                                   "host-sequential fallback cannot run "
                                   "inside a device data region"))
                    result = self._run_host(kwargs)
                else:
                    result = _vote(
                        target, runs=runs, trace=trace,
                        data_region=data_region, profiler=profiler,
                        injector=injector, watchdog_budget=watchdog_budget,
                        executor_mode=executor_mode, block_batch=block_batch,
                        attribution=attribution,
                        max_attempts=max_attempts, backoff_us=backoff_us,
                        backoff_cap_us=backoff_cap_us, kwargs=kwargs,
                        metrics=metrics, degradations=degradations)
                if validate is not None and not validate(result):
                    if metrics is not None:
                        metrics.counter(
                            "faults.validation_failures").inc()
                    raise SilentCorruptionError(
                        f"result validation failed under strategy "
                        f"{sname!r}")
            except (KeyboardInterrupt, SystemExit):
                # never treat an interrupt as a strategy failure: a ^C
                # mid-chain must stop the run, not walk the fallback chain
                raise
            except (SimulationError, TransientFaultError,
                    SilentCorruptionError) as exc:
                last_exc = exc
                if metrics is not None:
                    if isinstance(exc, WatchdogTimeoutError):
                        metrics.counter("faults.watchdog_timeouts").inc()
                    if isinstance(exc, SilentCorruptionError):
                        metrics.counter(
                            "faults.silent_corruption_detected").inc()
                    metrics.counter("faults.strategy_failures").inc()
                tl = _timeline.current()
                if tl is not None:
                    tl.decision(
                        "faults", "strategy-failure", strategy=sname,
                        error=type(exc).__name__,
                        exhausted=(level == len(chain) - 1))
                if level == len(chain) - 1:
                    raise
                degradations.append(DegradedExecutionError(
                    f"strategy {sname!r} failed: "
                    f"{type(exc).__name__}: {exc}",
                    strategy=sname, cause=exc))
                continue
            # success at this level
            result.strategy = sname
            result.degradations = degradations + result.degradations
            tl = _timeline.current()
            if tl is not None and (level > 0 or degradations):
                tl.decision("faults", "degrade", served_by=sname,
                            level=level,
                            walked=[d.strategy for d in degradations
                                    if getattr(d, "strategy", None)])
            if metrics is not None:
                metrics.counter(f"faults.served_by.{sname}").inc()
                if level > 0:
                    metrics.counter("faults.degraded").inc()
                if injector is not None:
                    for rec in injector.records[injected_before:]:
                        profiler.record_fault(rec.site, rec.kind)
            return result
        raise last_exc if last_exc is not None else SimulationError(
            "empty strategy chain")  # pragma: no cover - chain never empty

    def _fallback_program(self, name: str, overrides: dict):
        """Compile (and cache) the fallback lowering for one chain level.

        Returns ``None`` when the overrides produce the exact options the
        primary already uses — degrading to an identical lowering would
        re-run the same broken code.
        """
        if not hasattr(self, "_fallbacks"):
            self._fallbacks: dict[str, Program | None] = {}
        if name not in self._fallbacks:
            opts = replace(self.lowered.options, **overrides)
            if opts == self.lowered.options:
                self._fallbacks[name] = None
            else:
                lowered = lower_region(self.lowered.plan,
                                       self.lowered.geometry, opts)
                self._fallbacks[name] = Program(lowered, self.profile,
                                                self.device)
        return self._fallbacks[name]

    def _run_host(self, kwargs: dict) -> RunResult:
        """The last-resort strategy: sequential host interpretation.

        No kernels, no device memory, no fault-injection sites — by
        construction it cannot hit anything the fault layer breaks.  The
        ledger carries a single zero-cost ``host:sequential`` entry (the
        analytic device cost model does not apply to host execution).
        """
        from repro.ir.interp import run_host

        host = run_host(self.region, **kwargs)
        outputs = {
            a.name: np.array(host.arrays[a.name], copy=True)
            for a in self.region.arrays
            if a.transfer in ("copy", "copyout", "present")
        }
        scalars = {}
        for g in self.lowered.gang_reductions:
            scalars[g.var] = host.scalars[g.var]
            if g.is_pair:
                scalars[g.index_var] = host.scalars[g.index_var]
        ledger = TimingLedger()
        ledger.add("host:sequential", 0.0)
        return RunResult(outputs=outputs, scalars=scalars, ledger=ledger,
                         kernel_stats={})


def _as_injector(faults):
    """Accept a FaultPlan, an armed FaultInjector, or None."""
    if faults is None:
        return None
    if hasattr(faults, "on_launch"):  # already an injector
        return faults
    return faults.injector()  # a FaultPlan


def _execute_with_retry(prog: "Program", *, trace, data_region, profiler,
                        injector, watchdog_budget, max_attempts, backoff_us,
                        backoff_cap_us, kwargs, metrics, executor_mode=None,
                        block_batch=None, attribution=False) -> RunResult:
    """Retry transient faults (launch/transfer) with capped backoff.

    The backoff is *modeled* time — no wall-clock sleep — charged to the
    successful attempt's ledger as ``retry:backoff`` entries, so retries
    are visible in the timing report.
    """
    backoffs: list[float] = []
    attempt = 1
    while True:
        try:
            res = prog._execute(trace=trace, data_region=data_region,
                                profiler=profiler, faults=injector,
                                watchdog_budget=watchdog_budget,
                                executor_mode=executor_mode,
                                block_batch=block_batch,
                                attribution=attribution,
                                kwargs=kwargs)
        except (KeyboardInterrupt, SystemExit):
            # an interrupt is not a transient fault: re-raise immediately
            # without consuming an attempt or charging backoff
            raise
        except TransientFaultError as exc:
            if metrics is not None:
                metrics.counter("faults.transient_detected").inc()
            tl = _timeline.current()
            if tl is not None:
                tl.decision("faults", "retry", attempt=attempt,
                            max_attempts=max_attempts,
                            error=type(exc).__name__,
                            giving_up=(attempt >= max_attempts))
            if attempt >= max_attempts:
                raise
            if metrics is not None:
                metrics.counter("faults.retries").inc()
            backoffs.append(min(backoff_us * (2 ** (attempt - 1)),
                                backoff_cap_us))
            attempt += 1
            continue
        for us in backoffs:
            res.ledger.add("retry:backoff", us)
        res.attempts = attempt
        return res


def _vote(prog: "Program", *, runs, trace, data_region, profiler, injector,
          watchdog_budget, max_attempts, backoff_us, backoff_cap_us,
          kwargs, metrics, degradations, executor_mode=None,
          block_batch=None, attribution=False) -> RunResult:
    """Redundant-execution majority voting over ``runs`` replicas.

    A silent bit-flip raises no exception; executing the program N times
    and comparing results bitwise turns it into either a corrected vote
    (majority agrees) or a :class:`SilentCorruptionError` (no majority).
    """
    def once():
        return _execute_with_retry(
            prog, trace=trace, data_region=data_region, profiler=profiler,
            injector=injector, watchdog_budget=watchdog_budget,
            executor_mode=executor_mode, block_batch=block_batch,
            attribution=attribution,
            max_attempts=max_attempts, backoff_us=backoff_us,
            backoff_cap_us=backoff_cap_us, kwargs=kwargs, metrics=metrics)

    if runs <= 1:
        return once()
    results = [once() for _ in range(runs)]
    fps = [_fingerprint(r) for r in results]
    tally: dict[bytes, int] = {}
    for fp in fps:
        tally[fp] = tally.get(fp, 0) + 1
    majority_fp, count = max(tally.items(), key=lambda kv: kv[1])
    if count < runs // 2 + 1:
        if metrics is not None:
            metrics.counter("faults.vote_inconclusive").inc()
        raise SilentCorruptionError(
            f"redundant execution produced {len(tally)} distinct results "
            f"over {runs} runs (no majority)")
    winner = results[fps.index(majority_fp)]
    winner.attempts = max(r.attempts for r in results)
    if count < runs:
        winner.degradations = winner.degradations + [DegradedExecutionError(
            f"redundant-execution vote: {runs - count}/{runs} replicas "
            "diverged; majority result served")]
        if metrics is not None:
            metrics.counter("faults.vote_corrected").inc()
            metrics.counter("faults.silent_corruption_detected").inc()
    return winner


def _fingerprint(res: RunResult) -> bytes:
    """Bitwise fingerprint of a result's observable outputs."""
    parts: list[bytes] = []
    for name in sorted(res.scalars):
        parts.append(name.encode())
        parts.append(np.asarray(res.scalars[name]).tobytes())
    for name in sorted(res.outputs):
        parts.append(name.encode())
        parts.append(res.outputs[name].tobytes())
    return b"\x00".join(parts)


def compile(source: str, *, compiler: str | CompilerProfile = "openuh",
            num_gangs: int | None = None, num_workers: int | None = None,
            vector_length: int | None = None,
            device: DeviceProperties = K20C,
            array_dtypes: dict[str, str] | None = None,
            profiler=None, pipeline=None, capture_ir: bool = False,
            **option_overrides) -> Program:
    """Compile an OpenACC source fragment for the simulated device.

    ``compiler`` selects a profile (``openuh``, ``vendor-a``, ``vendor-b``);
    extra keyword arguments override individual
    :class:`~repro.codegen.lowering.LoweringOptions` fields (used by the
    ablation benchmarks, e.g. ``scheduling="blocking"``) — the autotune
    pass never second-guesses an explicitly overridden field.

    ``pipeline`` selects the pass pipeline (a name like ``"minimal"`` /
    ``"optimized"``, a comma list of optional passes, or a
    :class:`~repro.passes.PipelineSpec`); when ``None`` it resolves from
    the ``REPRO_PASSES`` environment variable, then the profile (see
    :func:`repro.passes.resolve_pipeline`).  ``capture_ir=True`` keeps
    before/after IR listings on each pass record (``Program.pass_records``
    — the data behind ``repro explain`` and ``compile --dump-ir``).

    ``profiler`` (a :class:`repro.obs.Profiler`) records one wall-time
    span per pass on the host trace track.
    """
    from repro.passes import CompileState, PassManager, resolve_pipeline

    profile = get_profile(compiler)
    opts = profile.lowering
    if option_overrides:
        opts = replace(opts, **option_overrides)
    spec = resolve_pipeline(pipeline, profile)
    state = CompileState(
        source=source, profile=profile, device=device, options=opts,
        array_dtypes=array_dtypes, num_gangs=num_gangs,
        num_workers=num_workers, vector_length=vector_length,
        pinned_options=frozenset(option_overrides))
    # request tracing: the whole compile (pipeline + kernel pre-compile)
    # is one span — a child inside a serve dispatch, a fresh root for a
    # top-level acc.compile
    with (_reqtrace.span("passes", "compile", compiler=profile.name,
                         pipeline=spec.name)
          if _timeline.trace_active() else nullcontext()):
        PassManager(spec, capture_ir=capture_ir).run(state,
                                                     profiler=profiler)
        with (profiler.phase("compile-kernels") if profiler is not None
              else nullcontext()):
            return Program(state.lowered, profile, device,
                           pipeline=state.pipeline, autotune=state.autotune,
                           pass_records=state.records,
                           trace_src=state.trace_src)
