"""Device data regions: the ``#pragma acc data`` lifetime construct.

The paper (§2.1) notes that OpenACC 1.0 expresses data movement per compute
construct and that 2.0 adds runtime control of data lifetimes.  Iterative
applications (the heat equation re-launches two kernels per sweep) waste
PCIe bandwidth without a surrounding data region.  This module provides
one::

    with DataRegion(copy={"temp1": t1, "temp2": t2}) as region:
        for _ in range(iters):
            update.run(data=region)      # no transfers: arrays are present
            err = errprog.run(data=region)
    t1 = region.results["temp1"]         # copied out once, at region exit

Programs executed with ``data=region`` share the region's device memory;
any of their arrays already held by the region follow *present* semantics
(no per-run allocation or transfer — the OpenACC ``present_or_copy``
behaviour).  Arrays not held by the region keep their per-run transfers.

``update_host`` / ``update_device`` model the OpenACC ``update`` directive
for mid-region synchronization (the heat convergence check needs nothing —
reduction results travel through scalar result buffers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dtypes import from_numpy
from repro.errors import RuntimeDataError
from repro.gpu.costmodel import CostModel, TimingLedger
from repro.gpu.device import DeviceProperties, K20C
from repro.gpu.memory import GlobalMemory

__all__ = ["DataRegion"]

_ENTRY_KINDS = ("copy", "copyin", "copyout", "create")


class DataRegion:
    """A device-resident data environment spanning multiple program runs."""

    def __init__(self, *, device: DeviceProperties = K20C,
                 copy: dict | None = None, copyin: dict | None = None,
                 copyout: dict | None = None, create: dict | None = None):
        self.device = device
        self.gmem = GlobalMemory(device)
        self.ledger = TimingLedger()
        self._cost = CostModel(device)
        self._clauses: dict[str, str] = {}
        self.host_arrays: dict[str, np.ndarray] = {}
        self.results: dict[str, np.ndarray] = {}
        self._entered = False
        self._closed = False
        for kind, mapping in (("copy", copy), ("copyin", copyin),
                              ("copyout", copyout), ("create", create)):
            for name, arr in (mapping or {}).items():
                if name in self._clauses:
                    raise RuntimeDataError(
                        f"array {name!r} appears in two data clauses")
                if not isinstance(arr, np.ndarray):
                    raise RuntimeDataError(
                        f"data region entry {name!r} must be a NumPy array")
                self._clauses[name] = kind
                self.host_arrays[name] = arr
        if not self._clauses:
            raise RuntimeDataError("a data region needs at least one array")

    # -- lifetime ----------------------------------------------------------

    def __enter__(self) -> "DataRegion":
        if self._entered:
            raise RuntimeDataError("data region already entered")
        self._entered = True
        for name, host in self.host_arrays.items():
            kind = self._clauses[name]
            flat = host.reshape(-1)
            init = flat if kind in ("copy", "copyin") else None
            self.gmem.alloc(name, flat.size, from_numpy(host.dtype),
                            init=init)
            if kind in ("copy", "copyin"):
                self.ledger.add(f"h2d:{name}",
                                self._cost.transfer_time(flat.nbytes))
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._closed = True
        if exc_type is not None:
            return
        for name, host in self.host_arrays.items():
            if self._clauses[name] in ("copy", "copyout"):
                data = self.gmem[name].data.copy()
                self.results[name] = data.reshape(host.shape)
                self.ledger.add(f"d2h:{name}",
                                self._cost.transfer_time(data.nbytes))

    # -- introspection used by Program.run ----------------------------------

    def holds(self, name: str) -> bool:
        return name in self._clauses

    def host_shape_of(self, name: str) -> np.ndarray:
        return self.host_arrays[name]

    def _check_active(self) -> None:
        if not self._entered or self._closed:
            raise RuntimeDataError(
                "data region is not active (use it as a context manager)")

    # -- the `update` directive ---------------------------------------------

    def update_host(self, name: str) -> np.ndarray:
        """``#pragma acc update host(name)``: device → host, charged."""
        self._check_active()
        if not self.holds(name):
            raise RuntimeDataError(f"{name!r} is not held by this region")
        data = self.gmem[name].data.copy()
        self.ledger.add(f"update-host:{name}",
                        self._cost.transfer_time(data.nbytes))
        return data.reshape(self.host_arrays[name].shape)

    def update_device(self, name: str, values: np.ndarray) -> None:
        """``#pragma acc update device(name)``: host → device, charged."""
        self._check_active()
        if not self.holds(name):
            raise RuntimeDataError(f"{name!r} is not held by this region")
        buf = self.gmem[name]
        flat = np.asarray(values, dtype=buf.dtype.np).reshape(-1)
        if flat.size != buf.size:
            raise RuntimeDataError(
                f"update_device({name!r}): size mismatch")
        buf.data[:] = flat
        self.ledger.add(f"update-device:{name}",
                        self._cost.transfer_time(flat.nbytes))

    @property
    def transfer_ms(self) -> float:
        return self.ledger.total_ms
