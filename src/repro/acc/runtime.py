"""OpenACC data environment: host↔device data movement for one region.

Implements the OpenACC 1.0 memory model the paper assumes (§2.1): host and
accelerator have separate memories, data clauses describe the traffic:

* ``copyin``  — host → device at region entry;
* ``copyout`` — device → host at region exit (device buffer starts zeroed);
* ``copy``    — both;
* ``create``  — device-only scratch, no transfers;
* ``present`` — assumed resident; modeled as ``copy`` without transfer cost
  (this single-region runtime has no enclosing ``data`` construct to hold
  long-lived buffers).

Array shapes bind the region's symbolic extents (``float a[NK][NJ]`` +
a host array of shape ``(4, 8)`` binds ``NK=4, NJ=8``), with consistency
checking against every other binding source.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dtypes import DType
from repro.errors import RuntimeDataError
from repro.gpu.costmodel import CostModel, TimingLedger
from repro.gpu.device import DeviceProperties
from repro.gpu.memory import GlobalMemory
from repro.ir.nodes import ArrayInfo, Region
from repro.obs import timeline as _timeline

__all__ = ["DataEnv"]


@dataclass
class DataEnv:
    """The per-run data environment.

    When ``data_region`` is set (an active
    :class:`~repro.acc.dataregion.DataRegion`), device memory is shared
    with the region: arrays the region holds follow *present* semantics
    (no per-run allocation or transfers), and everything this run
    allocates itself (other arrays, reduction scratch) is freed at
    cleanup so the program can run again in the same region.
    """

    region: Region
    device: DeviceProperties
    data_region: object | None = None  # DataRegion
    gmem: GlobalMemory = None  # type: ignore[assignment]
    ledger: TimingLedger = field(default_factory=TimingLedger)
    scalars: dict[str, np.generic] = field(default_factory=dict)
    host_arrays: dict[str, np.ndarray] = field(default_factory=dict)
    profiler: object | None = None  # repro.obs.Profiler, opt-in
    faults: object | None = None  # repro.faults.FaultInjector, opt-in

    def __post_init__(self):
        if self.data_region is not None:
            self.data_region._check_active()
            self.gmem = self.data_region.gmem
        else:
            self.gmem = GlobalMemory(self.device)
        self._cost = CostModel(self.device)
        self._ephemeral: list[str] = []

    def _resident(self, name: str) -> bool:
        return (self.data_region is not None
                and self.data_region.holds(name))

    def _charge_transfer(self, label: str, us: float, nbytes: int,
                         direction: str) -> None:
        """Ledger a host↔device copy; mirror it into the profiler."""
        self.ledger.add(label, us)
        if self.profiler is not None:
            self.profiler.record_transfer(label, us, nbytes, direction)
        tl = _timeline.current()
        if tl is not None:
            tl.span("gpu", f"transfer:{label}", us, bytes=nbytes,
                    direction=direction)

    # ------------------------------------------------------------------

    def bind(self, kwargs: dict[str, object]) -> None:
        """Bind host arrays and scalars from ``run(**kwargs)``."""
        arrays: dict[str, np.ndarray] = {}
        scalars: dict[str, object] = {}
        known_arrays = {a.name for a in self.region.arrays}
        known_scalars = {s.name for s in self.region.scalars}
        for name, value in kwargs.items():
            if isinstance(value, np.ndarray):
                if name not in known_arrays:
                    raise RuntimeDataError(
                        f"{name!r} is not an array of this region "
                        f"(arrays: {sorted(known_arrays)})")
                arrays[name] = value
            else:
                if name not in known_scalars:
                    raise RuntimeDataError(
                        f"{name!r} is not a scalar of this region "
                        f"(scalars: {sorted(known_scalars)})")
                scalars[name] = value

        for arr in self.region.arrays:
            if arr.name not in arrays:
                if self._resident(arr.name):
                    # present in the surrounding data region
                    arrays[arr.name] = self.data_region.host_arrays[arr.name]
                else:
                    raise RuntimeDataError(
                        f"missing host array {arr.name!r} "
                        f"(transfer {arr.transfer!r}); pass it to run() or "
                        "hold it in a data region")
            host = arrays[arr.name]
            self._bind_array(arr, host)

        # explicit scalar arguments override shape bindings only if equal
        for name, value in scalars.items():
            info = self.region.scalar(name)
            v = info.dtype.np.type(value)
            if name in self.scalars and self.scalars[name] != v:
                raise RuntimeDataError(
                    f"scalar {name!r}={v} contradicts the value {self.scalars[name]} "
                    "bound from an array shape")
            self.scalars[name] = v

        # preamble initializers fill anything still missing
        for info in self.region.scalars:
            if info.name in self.scalars:
                continue
            if info.init is not None:
                self.scalars[info.name] = info.dtype.np.type(info.init.value)
            elif info.from_shape is not None:
                raise RuntimeDataError(
                    f"scalar {info.name!r} should have been bound from "
                    f"array {info.from_shape[0]!r} — internal error")
            else:
                raise RuntimeDataError(
                    f"scalar {info.name!r} has no value: pass "
                    f"{info.name}=<value> to run()")

    def _bind_array(self, arr: ArrayInfo, host: np.ndarray) -> None:
        if host.dtype != arr.dtype.np:
            raise RuntimeDataError(
                f"array {arr.name!r} must have dtype {arr.dtype.np} "
                f"(C type {arr.dtype.ctype!r}), got {host.dtype}")
        if arr.extents:
            if host.ndim != len(arr.extents):
                raise RuntimeDataError(
                    f"array {arr.name!r} is declared with "
                    f"{len(arr.extents)} dimension(s), got shape "
                    f"{host.shape}")
            for i, ext in enumerate(arr.extents):
                if isinstance(ext, int):
                    if host.shape[i] != ext:
                        raise RuntimeDataError(
                            f"array {arr.name!r} dimension {i} must be "
                            f"{ext}, got {host.shape[i]}")
                else:
                    v = np.int32(host.shape[i])
                    if ext in self.scalars and self.scalars[ext] != v:
                        raise RuntimeDataError(
                            f"extent {ext!r}: array {arr.name!r} gives "
                            f"{v}, but it is already {self.scalars[ext]}")
                    self.scalars[ext] = v
        self.host_arrays[arr.name] = host

    # ------------------------------------------------------------------

    def enter(self) -> None:
        """Allocate device buffers and perform entry transfers.

        Arrays held by a surrounding data region are already resident:
        neither allocated nor transferred here (present semantics).
        """
        for arr in self.region.arrays:
            if self._resident(arr.name):
                continue
            host = self.host_arrays[arr.name]
            flat = host.reshape(-1)
            init = flat if arr.transfer in ("copy", "copyin", "present") \
                else None
            if (init is not None and self.faults is not None
                    and arr.transfer in ("copy", "copyin")):
                # fault model: the PCIe copy may fail (transient, raises)
                # or land corrupted; the host array is never mutated
                init = self.faults.on_transfer(f"h2d:{arr.name}", init,
                                               "h2d")
            self.gmem.alloc(arr.name, flat.size, arr.dtype, init=init)
            self._ephemeral.append(arr.name)
            if arr.transfer in ("copy", "copyin"):
                self._charge_transfer(f"h2d:{arr.name}",
                                      self._cost.transfer_time(flat.nbytes),
                                      flat.nbytes, "h2d")

    def alloc_scratch(self, name: str, dtype: DType, size: int,
                      fill=None) -> None:
        init = None
        if fill is not None:
            init = np.full(size, fill, dtype=dtype.np)
        self.gmem.alloc(name, size, dtype, init=init)
        self._ephemeral.append(name)

    def exit_outputs(self) -> dict[str, np.ndarray]:
        """Perform exit transfers; return the host-visible arrays.

        Region-held arrays stay on the device (read them at data-region
        exit or via ``DataRegion.update_host``).
        """
        out: dict[str, np.ndarray] = {}
        for arr in self.region.arrays:
            if self._resident(arr.name):
                continue
            if arr.transfer in ("copy", "copyout", "present"):
                data = self.gmem[arr.name].data.copy()
                if (self.faults is not None
                        and arr.transfer in ("copy", "copyout")):
                    data = self.faults.on_transfer(f"d2h:{arr.name}", data,
                                                   "d2h")
                host = self.host_arrays[arr.name]
                out[arr.name] = data.reshape(host.shape)
                if arr.transfer in ("copy", "copyout"):
                    self._charge_transfer(
                        f"d2h:{arr.name}",
                        self._cost.transfer_time(data.nbytes),
                        data.nbytes, "d2h")
        return out

    def cleanup(self) -> None:
        """Free this run's allocations when sharing a data region's memory
        (so the same program can run again in the region)."""
        if self.data_region is None:
            return
        for name in self._ephemeral:
            if name in self.gmem:
                self.gmem.free(name)
        self._ephemeral.clear()

    def read_result(self, buf: str) -> np.generic:
        """Read a 1-element result buffer (gang-reduction output)."""
        value = self.gmem[buf].data[0]
        if self.faults is not None:
            value = self.faults.on_transfer(f"d2h:{buf}",
                                            np.array([value]), "d2h")[0]
        self._charge_transfer(f"d2h:{buf}",
                              self._cost.transfer_time(int(value.nbytes)),
                              int(value.nbytes), "d2h")
        return value
