"""The :class:`ReductionSpec` abstraction: one reduction, declaratively.

A spec names *what* to reduce — the operator token, the accumulator
dtype, an optional non-identity initial value, and (for custom
operators) the C update statement — without saying *how*.  The library
front end (:mod:`repro.reduce.api`) turns a tuple of specs into an
OpenACC source fragment and compiles it through the ordinary
``acc.compile`` pipeline, so every lowering strategy, optimization pass
(including cascade fusion), executor mode, and cache in the stack
applies to library-issued reductions exactly as it does to hand-written
pragmas.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.codegen.reduction.operators import ReductionOperator, get_operator
from repro.dtypes import DType
from repro.errors import AnalysisError

__all__ = ["ReductionSpec", "UPDATE_TEMPLATES"]

#: C update-statement templates for the nine built-in operators —
#: ``{acc}`` is the accumulator variable, ``{val}`` the element read.
#: ``max``/``min`` use the guarded-assignment spelling so the analysis
#: sees the same shape the paper's hand-written kernels use.
UPDATE_TEMPLATES: dict[str, str] = {
    "+": "{acc} = {acc} + {val};",
    "*": "{acc} = {acc} * {val};",
    "max": "if ({val} > {acc}) {acc} = {val};",
    "min": "if ({val} < {acc}) {acc} = {val};",
    "&": "{acc} = {acc} & {val};",
    "|": "{acc} = {acc} | {val};",
    "^": "{acc} = {acc} ^ {val};",
    "&&": "{acc} = {acc} && {val};",
    "||": "{acc} = {acc} || {val};",
}


@dataclass(frozen=True)
class ReductionSpec:
    """One reduction over one input array.

    ``op`` is an operator token — a built-in OpenACC spelling (``+ *
    max min & | ^ && ||``) or a token registered with
    :func:`repro.reduce.define_operator`.  ``kind`` selects a plain
    scalar reduction or an ``argmax``/``argmin`` value–index pair.
    ``init`` (default ``None``) seeds the host-side fold with the
    operator identity; a non-identity value is folded in with exactly
    OpenACC's ``reduction`` semantics (host initial on the left).
    ``update`` supplies the C update statement for custom operators
    (built-ins have canonical templates); ``{acc}`` and ``{val}``
    placeholders are substituted.
    """

    op: str = "+"
    kind: str = "scalar"  # "scalar" | "argmax" | "argmin"
    dtype: DType | None = None  # None: inferred from the input array
    init: object | None = None  # None: the operator identity
    update: str | None = None  # C statement template for custom ops

    def __post_init__(self):
        if self.kind not in ("scalar", "argmax", "argmin"):
            raise AnalysisError(
                f"unknown reduction kind {self.kind!r} "
                "(expected scalar, argmax, or argmin)")
        if self.kind != "scalar" and self.op not in ("max", "min"):
            raise AnalysisError(
                f"{self.kind} reductions are value-index pairs; the op "
                f"is implied and may not be {self.op!r}")

    @property
    def operator(self) -> ReductionOperator:
        return get_operator(self.op)

    @property
    def is_pair(self) -> bool:
        return self.kind in ("argmax", "argmin")

    @property
    def exactness(self) -> str:
        """``"exact"`` (grouping-invariant) or ``"ordered"`` — pairs are
        always exact (the compare/tie-break rule is deterministic under
        any grouping)."""
        return "exact" if self.is_pair else self.operator.exactness

    def update_stmt(self, acc: str, val: str) -> str:
        """The C update statement for this spec."""
        tpl = self.update or UPDATE_TEMPLATES.get(self.op)
        if tpl is None:
            raise AnalysisError(
                f"custom operator {self.op!r} needs an explicit "
                "update= C statement template ('{acc}'/'{val}' "
                "placeholders)")
        # plain replacement, not str.format: C braces in custom
        # templates must not need escaping
        return tpl.replace("{acc}", acc).replace("{val}", val)

    def host_init(self, dtype: DType):
        """The host-fold seed: ``init`` if given, else the identity."""
        if self.init is not None:
            return dtype.np.type(self.init)
        return self.operator.identity(dtype)
