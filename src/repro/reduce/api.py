"""The generic reduction library: NumPy in, OpenACC pipeline underneath.

Every entry point here is a thin front end over ``acc.compile``: the
specs are rendered to an OpenACC source fragment (declaration preamble +
``reduction`` pragmas, exactly what a user would write by hand), the
fragment is compiled through the full pass pipeline — autotuner, cascade
fusion, fuse-finish, the lot — and executed on the simulated device.
Nothing reduction-shaped is special-cased: a ``tuple_reduce`` is one
parallel loop with one ``reduction`` clause per variable, an ``argmax``
is the ``reduction(argmax:v,i)`` pragma extension, and a
``segmented_reduce`` is a ``#pragma acc atomic`` scatter.  Compiled
programs are memoized per (source, geometry, compiler, pipeline,
options) so repeated library calls pay compilation once and then hit
the launch LRU like any other program.
"""

from __future__ import annotations

import numpy as np

from repro.dtypes import DType, from_numpy, is_integer
from repro.errors import AnalysisError
from repro.reduce.spec import ReductionSpec

__all__ = ["reduce", "tuple_reduce", "argmax", "argmin",
           "segmented_reduce", "build_source", "program_cache_clear"]

#: operators with a C compound-assignment spelling — the forms
#: ``#pragma acc atomic update`` accepts for the segmented scatter
_ATOMIC_OPS = ("+", "*", "&", "|", "^")

#: memoized compiled programs: full compile configuration -> Program
_PROGRAMS: dict[tuple, object] = {}


def program_cache_clear() -> None:
    """Drop the library's memoized compiled programs."""
    _PROGRAMS.clear()


def _zero_literal(dtype: DType) -> str:
    """A parseable placeholder initializer (real inits bind at run)."""
    if dtype is DType.FLOAT:
        return "0.0f"
    if dtype is DType.DOUBLE:
        return "0.0"
    return "0"


def _as_array(values) -> np.ndarray:
    arr = np.ascontiguousarray(values)
    if arr.ndim != 1:
        arr = arr.reshape(-1)
    return arr


def build_source(specs: tuple[ReductionSpec, ...],
                 dtypes: tuple[DType, ...]) -> str:
    """Render specs to the OpenACC fragment the compiler ingests.

    One input array, accumulator declaration, and ``reduction`` clause
    per spec; a single ``gang worker vector`` loop carries every update
    so multi-variable reductions lower into one kernel (and cascade
    with any consumer the caller composes around them).
    """
    decls, clauses, updates, arrays = [], [], [], []
    for k, (spec, dt) in enumerate(zip(specs, dtypes)):
        a, r = f"a{k}", f"r{k}"
        arrays.append(a)
        decls.append(f"{dt.ctype} {a}[n];")
        decls.append(f"{dt.ctype} {r} = {_zero_literal(dt)};")
        if spec.is_pair:
            decls.append(f"int {r}_i = 0;")
            clauses.append(f"reduction({spec.kind}:{r},{r}_i)")
            cmp = ">" if spec.kind == "argmax" else "<"
            updates.append(f"  if ({a}[i] {cmp} {r}) "
                           f"{{ {r} = {a}[i]; {r}_i = i; }}")
        else:
            clauses.append(f"reduction({spec.op}:{r})")
            updates.append("  " + spec.update_stmt(r, f"{a}[i]"))
    body = "\n".join(updates)
    return (
        "\n".join(decls) + "\n"
        f"#pragma acc parallel copyin({', '.join(arrays)})\n"
        f"#pragma acc loop gang worker vector {' '.join(clauses)}\n"
        f"for (i = 0; i < n; i++) {{\n{body}\n}}\n")


def _compile(source: str, *, compiler, pipeline, num_gangs, num_workers,
             vector_length, **options):
    from repro import acc

    key = (source, compiler, repr(pipeline), num_gangs, num_workers,
           vector_length, tuple(sorted((k, repr(v))
                                       for k, v in options.items())))
    prog = _PROGRAMS.get(key)
    if prog is None:
        prog = acc.compile(source, compiler=compiler, pipeline=pipeline,
                           num_gangs=num_gangs, num_workers=num_workers,
                           vector_length=vector_length, **options)
        _PROGRAMS[key] = prog
    return prog


def tuple_reduce(arrays, specs, *, compiler: str = "openuh",
                 pipeline=None, num_gangs: int = 16, num_workers: int = 1,
                 vector_length: int = 64, run_kwargs: dict | None = None,
                 **options) -> tuple:
    """Reduce several same-length arrays in one parallel loop.

    ``arrays`` and ``specs`` pair up positionally; every array must have
    the same length (one loop carries all updates).  Returns one result
    per spec — a NumPy scalar for scalar reductions, a ``(value,
    index)`` pair for ``argmax``/``argmin`` specs.  Extra keyword
    ``options`` are ``acc.compile`` lowering overrides (pinned against
    the autotuner as usual); ``run_kwargs`` forwards to ``Program.run``
    (e.g. ``executor_mode="reference"``).
    """
    specs = tuple(s if isinstance(s, ReductionSpec)
                  else ReductionSpec(op=s) for s in specs)
    hosts = [_as_array(a) for a in arrays]
    if len(hosts) != len(specs):
        raise AnalysisError(
            f"{len(hosts)} arrays for {len(specs)} reduction specs")
    if not hosts:
        raise AnalysisError("tuple_reduce needs at least one array")
    n = hosts[0].size
    if any(h.size != n for h in hosts):
        raise AnalysisError(
            "tuple_reduce arrays must share one length "
            f"(got {[h.size for h in hosts]})")
    dtypes = []
    for spec, h in zip(specs, hosts):
        dt = spec.dtype or from_numpy(h.dtype)
        if dt.np != h.dtype:
            raise AnalysisError(
                f"spec dtype {dt.ctype} does not match array dtype "
                f"{h.dtype} (cast the array on the host)")
        dtypes.append(dt)
    dtypes = tuple(dtypes)

    prog = _compile(build_source(specs, dtypes), compiler=compiler,
                    pipeline=pipeline, num_gangs=num_gangs,
                    num_workers=num_workers, vector_length=vector_length,
                    **options)
    kwargs: dict = {}
    for k, (spec, dt, h) in enumerate(zip(specs, dtypes, hosts)):
        kwargs[f"a{k}"] = h
        kwargs[f"r{k}"] = spec.host_init(dt)
        if spec.is_pair:
            # index identity: "no element seen yet" — any real index wins
            kwargs[f"r{k}_i"] = np.int32(np.iinfo(np.int32).max)
    res = prog.run(**kwargs, **(run_kwargs or {}))
    out = []
    for k, spec in enumerate(specs):
        if spec.is_pair:
            out.append((res.scalars[f"r{k}"], int(res.scalars[f"r{k}_i"])))
        else:
            out.append(res.scalars[f"r{k}"])
    return tuple(out)


def reduce(values, op: str | ReductionSpec = "+", *, init=None,
           update: str | None = None, **kw):
    """Reduce one array with one operator (built-in or user-defined).

    ``op`` may be an operator token or a full :class:`ReductionSpec`;
    ``init`` seeds the fold (identity by default), ``update`` supplies
    the C update statement for custom operators.  Remaining keywords
    are forwarded to :func:`tuple_reduce`.
    """
    spec = op if isinstance(op, ReductionSpec) else \
        ReductionSpec(op=op, init=init, update=update)
    return tuple_reduce([values], [spec], **kw)[0]


def argmax(values, **kw) -> tuple:
    """``(max value, index of first max)`` via ``reduction(argmax:..)``.

    Ties break toward the smaller index; NaNs never win the strict
    compare, so an all-NaN input returns the seed pair.
    """
    spec = ReductionSpec(op="max", kind="argmax")
    return tuple_reduce([values], [spec], **kw)[0]


def argmin(values, **kw) -> tuple:
    """``(min value, index of first min)`` via ``reduction(argmin:..)``."""
    spec = ReductionSpec(op="min", kind="argmin")
    return tuple_reduce([values], [spec], **kw)[0]


def segmented_reduce(values, segments, num_segments: int, op: str = "+",
                     *, compiler: str = "openuh", pipeline=None,
                     num_gangs: int = 16, num_workers: int = 1,
                     vector_length: int = 64,
                     run_kwargs: dict | None = None,
                     **options) -> np.ndarray:
    """Per-segment reduction via an atomic scatter.

    ``segments[i]`` names the output slot element ``i`` combines into;
    the loop scatters with ``#pragma acc atomic`` so colliding updates
    from different lanes serialize.  Only operators with a C compound
    assignment (``+ * & | ^``) are supported — the atomic directive
    accepts exactly those update shapes.  The output array is seeded
    with the operator identity.
    """
    if op not in _ATOMIC_OPS:
        raise AnalysisError(
            f"segmented_reduce supports {', '.join(_ATOMIC_OPS)} "
            f"(atomic compound updates); got {op!r}")
    vals = _as_array(values)
    segs = _as_array(segments).astype(np.int32, copy=False)
    if vals.size != segs.size:
        raise AnalysisError(
            f"values ({vals.size}) and segments ({segs.size}) must "
            "share one length")
    if segs.size and (segs.min() < 0 or segs.max() >= num_segments):
        raise AnalysisError(
            f"segment ids must lie in [0, {num_segments}); got "
            f"[{segs.min()}, {segs.max()}]")
    dt = from_numpy(vals.dtype)
    spec = ReductionSpec(op=op)
    if spec.operator.integer_only and not is_integer(dt):
        raise AnalysisError(
            f"operator {op!r} requires an integer dtype, got {dt.ctype}")
    source = (
        f"{dt.ctype} vals[n];\n"
        "int segs[n];\n"
        f"{dt.ctype} out[k];\n"
        "#pragma acc parallel copyin(vals, segs) copy(out)\n"
        "#pragma acc loop gang worker vector\n"
        "for (i = 0; i < n; i++) {\n"
        "  #pragma acc atomic update\n"
        f"  out[segs[i]] {op}= vals[i];\n"
        "}\n")
    prog = _compile(source, compiler=compiler, pipeline=pipeline,
                    num_gangs=num_gangs, num_workers=num_workers,
                    vector_length=vector_length, **options)
    seed = np.full(num_segments, spec.operator.identity(dt), dtype=dt.np)
    res = prog.run(vals=vals, segs=segs, out=seed,
                   **(run_kwargs or {}))
    return res.outputs["out"]
