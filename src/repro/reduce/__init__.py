"""``repro.reduce`` — the generic reduction library.

The paper's machinery (§3: divide-and-conquer partials, finish kernels,
exactness-aware strategy selection) generalizes past ``reduction(+:x)``
pragmas; this package is the generalization's front door:

* :class:`~repro.reduce.spec.ReductionSpec` — operator, dtype,
  exactness class, initial value, declaratively;
* :func:`reduce` / :func:`tuple_reduce` — one or several reductions in
  one parallel loop (mixed operators welcome);
* :func:`argmax` / :func:`argmin` — value–index pair reductions
  (deterministic tie-break toward the smaller index);
* :func:`segmented_reduce` — per-segment combine via the
  ``#pragma acc atomic`` scatter path;
* :func:`define_operator` — register a user-defined associative
  operator usable from both this API and ``reduction(<token>:var)``
  clauses.

Everything compiles through the ordinary ``acc.compile`` pipeline —
autotuning, cascade fusion, the launch and serve caches, and all three
executor modes apply unchanged.
"""

from repro.codegen.reduction.operators import define_operator
from repro.reduce.api import (argmax, argmin, build_source,
                              program_cache_clear, reduce,
                              segmented_reduce, tuple_reduce)
from repro.reduce.spec import UPDATE_TEMPLATES, ReductionSpec

__all__ = ["ReductionSpec", "UPDATE_TEMPLATES", "reduce", "tuple_reduce",
           "argmax", "argmin", "segmented_reduce", "define_operator",
           "build_source", "program_cache_clear"]
