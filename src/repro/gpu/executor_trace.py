"""Trace-compiled executor: kernel IR lowered to generated NumPy source.

The batched executor (:mod:`repro.gpu.executor_batched`) removed the
per-block Python dispatch but still walks the compiled closure tree —
one Python call per statement per region execution, plus per-access mask
gathers (``warpkey[mask]``, ``block_of[mask]``) that are recomputed for
every statement of a straight-line block even though the mask did not
change.  This module removes that layer too: each kernel is *compiled to
Python source* once — a single function of whole-array NumPy ops over
the ``(block, lane)`` axes — and executed per chunk.  What the generated
code buys over the closure interpreter:

* straight-line blocks are fused: no per-statement closure dispatch and
  no repeated ``np.asarray``/broadcast plumbing;
* divergence masks are precomputed per branch region, with an all-true
  fast path that skips the warp ``reduceat`` bookkeeping entirely;
* the per-region active-lane gathers (``mi``/``warpkey``/``block``/
  ``rows``) are hoisted to the region prologue and shared by every
  memory access in the region — and skipped outright while the region
  mask is full;
* counter updates (``KernelStats`` / ``StmtCounters``) are emitted
  inline per region with the enclosing region's precomputed active-warp
  totals, exactly mirroring the batched closures' arithmetic.

Bit-identity is the contract, not a goal: results, every KernelStats
counter, and attribution tables must match the reference and batched
executors exactly.  The accounting *calls* are therefore shared — the
generated code invokes the same
:meth:`~repro.gpu.memory.GlobalMemory._count_transactions_batched` and
:meth:`~repro.gpu.memory.SharedMemory._count_banks` the batched closures
use, with the same per-launch segment-reuse cache and the same
launch-end :func:`~repro.gpu.memory.finalize_segment_reuse` replay.

Eligibility (:func:`analyze_trace_safety`) is the batched proof plus "no
atomics" (``ufunc.at`` ordering is interpreter-level; not worth a second
order proof here).  Launches that arm a fault injector or request
TraceEvent collection demote to the batched path — the generated code
carries no fault hooks by design, so the hot path pays nothing for
them.  Runtime cross-block hazards raise the same ``_BatchHazard`` and
roll back to the reference executor through the common checked-launch
wrapper in :meth:`~repro.gpu.executor.CompiledKernel.run`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import BarrierDivergenceError, SimulationError
from repro.gpu import kernelir as K
from repro.gpu.device import DeviceProperties
from repro.gpu.executor import (
    _BINOPS, _CALLS, _c_div, _c_mod, _truthy,
)
from repro.gpu.executor_batched import (
    DEFAULT_BLOCK_BATCH, BatchedBlockEnv, _BatchHazard, _compact_env,
    _expand_env, _lane_uniform_stmts, _walk_expr, _warps_per_block,
    _watchdog_trip, analyze_batch_safety,
)
from repro.gpu.memory import (
    BatchedSharedMemory, GlobalMemory, finalize_segment_reuse,
)
from repro.gpu.events import KernelStats

__all__ = [
    "TraceSafety", "analyze_trace_safety", "emit_trace_source",
    "compile_trace_source", "run_trace",
]


# --------------------------------------------------------------------------
# eligibility
# --------------------------------------------------------------------------

class TraceSafety:
    """Verdict of the static trace-compilation proof for one kernel."""

    __slots__ = ("eligible", "reason")

    def __init__(self, eligible: bool, reason: str = ""):
        self.eligible = eligible
        self.reason = reason

    def __repr__(self):
        return f"TraceSafety(eligible={self.eligible}, reason={self.reason!r})"


_SUPPORTED_STMTS = (K.Assign, K.GLoad, K.GStore, K.SLoad, K.SStore,
                    K.If, K.While, K.UniformWhile, K.Sync, K.ShflDown,
                    K.Comment)


def _expr_unsupported(e) -> str | None:
    """First unsupported construct in an expression tree, or None."""
    if isinstance(e, (K.Const, K.Reg, K.Special, K.Param)):
        return None
    if isinstance(e, K.Bin):
        if e.op not in _BINOPS and e.op not in ("&&", "||"):
            return f"binary op {e.op!r}"
        return _expr_unsupported(e.a) or _expr_unsupported(e.b)
    if isinstance(e, K.Un):
        if e.op not in ("neg", "not", "inv"):
            return f"unary op {e.op!r}"
        return _expr_unsupported(e.a)
    if isinstance(e, K.Call):
        if e.fn not in _CALLS:
            return f"intrinsic {e.fn!r}"
        for a in e.args:
            bad = _expr_unsupported(a)
            if bad:
                return bad
        return None
    if isinstance(e, K.Cast):
        return _expr_unsupported(e.a)
    if isinstance(e, K.Select):
        return (_expr_unsupported(e.cond) or _expr_unsupported(e.a)
                or _expr_unsupported(e.b))
    return f"expression node {type(e).__name__}"


def _stmt_exprs(s):
    if isinstance(s, K.Assign):
        return (s.value,)
    if isinstance(s, K.GLoad):
        return (s.index,)
    if isinstance(s, (K.GStore, K.SStore)):
        return (s.index, s.value)
    if isinstance(s, K.SLoad):
        return (s.index,)
    if isinstance(s, (K.If, K.While, K.UniformWhile)):
        return (s.cond,)
    return ()


def analyze_trace_safety(kernel: K.Kernel) -> TraceSafety:
    """Static proof that ``kernel`` can be trace-compiled bit-identically.

    Requirements: every statement/expression is in the code generator's
    vocabulary, there are no atomics (their duplicate-combine order is a
    property of ``ufunc.at`` dispatch, left to the interpreters), and
    the batched block-independence proof holds — the trace executor
    advances chunks exactly like the batched one, so it inherits both
    the proof and the runtime checked-hazard discipline.
    """
    for s, _ in K.walk_stmts(kernel.body):
        if isinstance(s, K.AtomicUpdate):
            return TraceSafety(False, "atomic update (order-sensitive)")
        if not isinstance(s, _SUPPORTED_STMTS):
            return TraceSafety(
                False, f"unsupported statement {type(s).__name__}")
        for e in _stmt_exprs(s):
            bad = _expr_unsupported(e)
            if bad:
                return TraceSafety(False, f"unsupported {bad}")
    safety = analyze_batch_safety(kernel)
    if not safety.batchable:
        return TraceSafety(False, safety.reason)
    return TraceSafety(True, "")


#: thread-geometry specials that vary across the lanes of one *warp*
#: (``ty`` is constant within a warp whenever ``blockDim.x`` is a
#: multiple of the warp size — the runtime guard the emitter adds)
_WARP_VARYING_SPECIALS = frozenset({"tx", "tid"})


def _warp_uniform_stmts(kernel) -> frozenset:
    """ids of GLoads with a per-warp-uniform index in warp-uniform control.

    The warp-level sibling of
    :func:`~repro.gpu.executor_batched._lane_uniform_stmts`: a register
    is warp-uniform when every assignment to it is of a warp-uniform
    expression and not under warp-divergent control, so all lanes of a
    warp always hold the same value.  Unlike the block-level verdict the
    collection also requires warp-uniform *control* around the load —
    the representative helper runs on partial region masks too, and
    warp-uniform control is what makes every such mask constant within
    each warp (whole warps on or off).  Both halves of the verdict
    assume ``ty`` is warp-uniform, which holds exactly when
    ``blockDim.x % warp_size == 0``; the generated code guards on that
    at runtime and falls back to the per-lane helper.
    """
    varying: set[str] = set()

    def is_varying(e) -> bool:
        regs, specs = set(), set()
        _walk_expr(e, regs, specs)
        return bool(specs & _WARP_VARYING_SPECIALS) or bool(regs & varying)

    def visit(stmts, div):
        for s in stmts:
            if isinstance(s, K.Assign):
                if div or is_varying(s.value):
                    varying.add(s.dst)
            elif isinstance(s, (K.GLoad, K.SLoad, K.ShflDown)):
                varying.add(s.dst)
            elif isinstance(s, K.If):
                d = div or is_varying(s.cond)
                visit(s.then, d)
                visit(s.orelse, d)
            elif isinstance(s, (K.While, K.UniformWhile)):
                visit(s.body, div or is_varying(s.cond))

    while True:
        before = len(varying)
        visit(kernel.body, False)
        if len(varying) == before:
            break

    out: set[int] = set()

    def collect(stmts, div):
        for s in stmts:
            if isinstance(s, K.GLoad) and not div \
                    and not is_varying(s.index):
                out.add(id(s))
            elif isinstance(s, K.If):
                d = div or is_varying(s.cond)
                collect(s.then, d)
                collect(s.orelse, d)
            elif isinstance(s, (K.While, K.UniformWhile)):
                collect(s.body, div or is_varying(s.cond))

    collect(kernel.body, False)
    return frozenset(out)


# --------------------------------------------------------------------------
# runtime helpers (bound into the generated code's globals)
# --------------------------------------------------------------------------

def _bc(c: np.ndarray, shp) -> np.ndarray:
    """Broadcast a condition/index array to the chunk shape."""
    return c if c.shape == shp else np.broadcast_to(c, shp)


def _fresh(v, shp) -> np.ndarray:
    """Materialize an assigned value as a freshly-owned full-shape array.

    Used when the RHS root may alias live storage (a register read, a
    no-op cast, a constant): registers must stay uniquely owned so the
    in-place masked ``copyto`` discipline can never write through an
    alias.
    """
    v = np.asarray(v)
    if v.shape != shp:
        out = np.empty(shp, dtype=v.dtype)
        out[...] = v
        return out
    return v.copy()


def _full(v, shp) -> np.ndarray:
    """Like :func:`_fresh` but for RHS roots that already produced a
    fresh array (ufunc outputs): only materializes on a shape mismatch."""
    v = np.asarray(v)
    if v.shape != shp:
        out = np.empty(shp, dtype=v.dtype)
        out[...] = v
        return out
    return v


def _massign(E, name: str, v, m: np.ndarray) -> None:
    """Masked register assignment — ``executor._assign`` minus the
    full-mask branch (the generated code dispatches that statically)."""
    v = np.asarray(v)
    reg = E.regs.get(name)
    if reg is None or reg.dtype != v.dtype:
        base = np.zeros(m.shape, dtype=v.dtype)
        if reg is not None:  # dtype change: keep old values where inactive
            np.copyto(base, reg, casting="unsafe")
        E.regs[name] = base
        reg = base
    np.copyto(reg, v, where=m)


def _cast(v, dt):
    v = np.asarray(v)
    if v.dtype == dt:
        return v
    return v.astype(dt)  # C-style truncation for float->int


def _param(E, name: str):
    try:
        return E.params[name]
    except KeyError:
        raise SimulationError(
            f"kernel parameter {name!r} not bound at launch") from None


def _attr_global(row, st, g0, l0, b0, d0):
    row.global_transactions += st.global_transactions - g0
    row.l2_transactions += st.l2_transactions - l0
    row.global_bytes += st.global_bytes - b0
    row.dram_bytes += st.dram_bytes - d0


def _act_of(idx: np.ndarray, m: np.ndarray, mi) -> np.ndarray:
    """Active-lane gather of a (broadcast) chunk-shaped index/value."""
    if idx.flags["C_CONTIGUOUS"]:
        return idx.reshape(-1).take(mi)
    return idx[m]


def _gload(E, name, buf, idx, m, mi, wk, bf, slot, check) -> None:
    """Global load for one region; mirrors the batched ``do_gload`` /
    ``GlobalMemory.load_batched`` pair (bounds, hazard check, gather,
    transaction accounting) with the region gathers precomputed."""
    gm = E.gmem
    shp = m.shape
    idx = np.asarray(idx)
    if idx.shape != shp:
        idx = np.broadcast_to(idx, shp)
    act = idx.reshape(-1) if mi is None else _act_of(idx, m, mi)
    if check is not None:
        owners, maxread = check
        ci = np.minimum(act, owners.size - 1)
        own = owners[ci]
        if ((own != -1) & (own > bf)).any():
            raise _BatchHazard(buf.name)
        maxread[ci] = np.maximum(bf, maxread[ci])
    gm._check_bounds(buf, act)
    vals = buf.data[act]
    gm._count_transactions_batched(buf, act, wk, bf, E.stats,
                                   reuse=(E.seg_cache, slot))
    if mi is None:
        E.regs[name] = vals.reshape(shp)
    else:
        reg = E.regs.get(name)
        if reg is None or reg.dtype != vals.dtype:
            base = np.zeros(shp, dtype=vals.dtype)
            if reg is not None:
                np.copyto(base, reg, casting="unsafe")
            E.regs[name] = base
            reg = base
        reg.reshape(-1)[mi] = vals


def _gload_u(E, name, buf, idx, m, mi, wk, bf, slot, check) -> None:
    """Per-block-uniform global load (static lane-uniformity verdict).

    With a full region mask, one representative per block stands in for
    every lane — no per-lane index materialization at all.  Counter
    parity with the generic path is exact: a uniform index gives one
    segment per warp and one tagged segment per block either way (the
    batched executor's ``reps`` fast path makes the same argument).  The
    ``m`` array is passed to the transaction counter as ``act_idx``
    because with a full mask the active-lane count *is* ``m.size`` — the
    reps path only reads ``act_idx.size``.
    """
    if mi is not None:
        _gload(E, name, buf, idx, m, mi, wk, bf, slot, check)
        return
    gm = E.gmem
    shp = m.shape
    idxb = np.asarray(idx)
    if idxb.shape != shp:
        idxb = np.broadcast_to(idxb, shp)
    rep = idxb[:, 0]
    rblk = E.block_ids
    if check is not None:
        owners, maxread = check
        ci = np.minimum(rep, owners.size - 1)
        own = owners[ci]
        if ((own != -1) & (own > rblk)).any():
            raise _BatchHazard(buf.name)
        maxread[ci] = np.maximum(rblk, maxread[ci])
    gm._check_bounds(buf, rep)
    v = buf.data[rep]
    gm._count_transactions_batched(buf, m, wk, None, E.stats,
                                   reuse=(E.seg_cache, slot),
                                   reps=(rep, rblk))
    out = np.empty(shp, dtype=v.dtype)
    out[...] = v[:, None]
    E.regs[name] = out


def _gload_w(E, name, buf, idxw, m, full, slot, check, ws) -> None:
    """Per-warp-uniform global load (static verdict + runtime guard).

    ``idxw`` was evaluated on warp-representative slices — one column
    per warp — so no per-lane index array is ever materialized.  Only
    reached when ``blockDim.x % warp_size == 0`` and the static
    :func:`_warp_uniform_stmts` verdict holds: each warp's lanes share
    one index value and the region mask is constant within each warp,
    so active warps (and their first lanes) stand in for active lanes.
    Counter parity with the per-lane path is exact — one segment per
    active warp makes ``requests`` the active-warp count, the per-block
    dedup collapses to the representatives, and the byte count uses the
    true lane count (active warps x warp width); the hazard check and
    the bounds check see the same index values in the same order.
    """
    gm = E.gmem
    shp = m.shape
    nb = shp[0]
    nw = shp[1] // ws
    idxw = np.asarray(idxw)
    if idxw.shape != (nb, nw):
        idxw = np.broadcast_to(idxw, (nb, nw))
    if not idxw.flags["C_CONTIGUOUS"]:
        idxw = np.ascontiguousarray(idxw)
    if full:
        rep = idxw.reshape(-1)
        rblk = np.repeat(E.block_ids, nw)
        lanes = m.size
        miw = None
    else:
        miw = np.flatnonzero(np.ascontiguousarray(m[:, ::ws]).reshape(-1))
        rep = idxw.reshape(-1).take(miw)
        rblk = E.block_ids[miw // nw]
        lanes = miw.size * ws
    if check is not None:
        owners, maxread = check
        ci = np.minimum(rep, owners.size - 1)
        own = owners[ci]
        if ((own != -1) & (own > rblk)).any():
            raise _BatchHazard(buf.name)
        maxread[ci] = np.maximum(rblk, maxread[ci])
    gm._check_bounds(buf, rep)
    vals = buf.data[rep]
    gm._count_transactions_batched(buf, rep, None, None, E.stats,
                                   reuse=(E.seg_cache, slot),
                                   wreps=(rblk, lanes))
    if miw is None:
        out = np.empty(shp, dtype=vals.dtype)
        out.reshape(nb, nw, ws)[...] = vals.reshape(nb, nw)[:, :, None]
        E.regs[name] = out
    else:
        reg = E.regs.get(name)
        if reg is None or reg.dtype != vals.dtype:
            base = np.zeros(shp, dtype=vals.dtype)
            if reg is not None:
                np.copyto(base, reg, casting="unsafe")
            E.regs[name] = base
            reg = base
        reg.reshape(nb * nw, ws)[miw] = vals[:, None]


def _gstore(E, buf, idx, val, m, mi, wk, bf, slot, check) -> None:
    """Global store for one region; mirrors ``do_gstore`` /
    ``store_batched`` (cast-then-gather value order, hazard claim before
    bounds, duplicate indices resolve in flattened lane order)."""
    gm = E.gmem
    shp = m.shape
    idx = np.asarray(idx)
    if idx.shape != shp:
        idx = np.broadcast_to(idx, shp)
    act = idx.reshape(-1) if mi is None else _act_of(idx, m, mi)
    if check is not None:
        owners, maxread = check
        ci = np.minimum(act, owners.size - 1)
        own = owners[ci]
        if ((own != -1) & (own != bf)).any():
            raise _BatchHazard(buf.name)
        if (maxread[ci] > bf).any():
            raise _BatchHazard(buf.name)
        owners[ci] = bf
    gm._check_bounds(buf, act)
    sv = np.asarray(val)
    if sv.shape != shp:
        sv = np.broadcast_to(sv, shp)
    sv = np.asarray(sv, dtype=buf.dtype.np)
    buf.data[act] = sv.reshape(-1) if mi is None else _act_of(sv, m, mi)
    gm._count_transactions_batched(buf, act, wk, bf, E.stats,
                                   reuse=(E.seg_cache, slot))


def _sbounds(name: str, size: int, act: np.ndarray) -> None:
    from repro.errors import OutOfBoundsError
    if act.size and (act.min() < 0 or act.max() >= size):
        bad = act[(act < 0) | (act >= size)][0]
        raise OutOfBoundsError(
            f"index {int(bad)} out of bounds for shared array "
            f"{name!r} of size {size}"
        )


def _sload(E, name, arr, idx, m, mi, wk, rw) -> None:
    """Shared load; mirrors ``BatchedSharedMemory.load`` with the region
    gathers precomputed (bank accounting shared)."""
    sm = E.smem
    shp = m.shape
    a = sm._arrays[arr]
    idx = np.asarray(idx)
    if idx.shape != shp:
        idx = np.broadcast_to(idx, shp)
    act = idx.reshape(-1) if mi is None else _act_of(idx, m, mi)
    _sbounds(arr, a.shape[1], act)
    vals = a[rw, act]
    sm._count_banks(arr, act, wk)
    if mi is None:
        E.regs[name] = vals.reshape(shp)
    else:
        reg = E.regs.get(name)
        if reg is None or reg.dtype != vals.dtype:
            base = np.zeros(shp, dtype=vals.dtype)
            if reg is not None:
                np.copyto(base, reg, casting="unsafe")
            E.regs[name] = base
            reg = base
        reg.reshape(-1)[mi] = vals


def _sstore(E, arr, idx, val, m, mi, wk, rw) -> None:
    sm = E.smem
    shp = m.shape
    a = sm._arrays[arr]
    idx = np.asarray(idx)
    if idx.shape != shp:
        idx = np.broadcast_to(idx, shp)
    act = idx.reshape(-1) if mi is None else _act_of(idx, m, mi)
    _sbounds(arr, a.shape[1], act)
    sv = np.asarray(val)
    if sv.shape != shp:
        sv = np.broadcast_to(sv, shp)
    sv = np.asarray(sv, dtype=a.dtype)
    a[rw, act] = sv.reshape(-1) if mi is None else _act_of(sv, m, mi)
    sm._count_banks(arr, act, wk)


def _shfl(E, dst, src, delta, ws, m, full) -> None:
    try:
        reg = E.regs[src]
    except KeyError:
        raise SimulationError(
            f"register {src!r} read before assignment") from None
    n = reg.shape[-1]
    ar = np.arange(n)
    lane = ar % ws
    src_idx = np.where(lane + delta < ws, np.minimum(ar + delta, n - 1), ar)
    v = reg[:, src_idx]
    if full:
        E.regs[dst] = v  # fancy gather: freshly owned
    else:
        _massign(E, dst, v, m)


def _sync(E, m, aws, row) -> None:
    anyb = m.any(axis=1)
    allb = m.all(axis=1)
    partial = anyb & ~allb
    if partial.any():
        bad = int(np.flatnonzero(partial)[0])
        raise BarrierDivergenceError(
            "__syncthreads() executed under divergent control flow "
            f"({int(m[bad].sum())}/{m.shape[1]} threads active)"
        )
    E.stats.barriers += int(anyb.sum())
    E.stats.warp_inst_slots += aws
    if row is not None:
        arrived = int(anyb.sum())
        row.execs += arrived
        row.lanes += int(m.sum())
        row.warp_slots += aws
        row.barrier_arrivals += arrived
        row.barrier_wait_slots += aws


#: globals bound into every generated kernel function
_BASE_GLOBALS = {
    "np": np,
    "ASR": np.asarray,
    "TRU": _truthy,
    "RED": np.add.reduceat,
    "WHERE": np.where,
    "NEG": np.negative,
    "INV": np.invert,
    "ADD": np.add, "SUB": np.subtract, "MUL": np.multiply,
    "DIV": _c_div, "MOD": _c_mod,
    "LSH": np.left_shift, "RSH": np.right_shift,
    "BAND": np.bitwise_and, "BOR": np.bitwise_or, "BXOR": np.bitwise_xor,
    "LT": np.less, "LE": np.less_equal,
    "GT": np.greater, "GE": np.greater_equal,
    "EQ": np.equal, "NE": np.not_equal,
    "I32": np.int32, "I64": np.int64,
    "F32": np.float32, "F64": np.float64, "BOOL": np.bool_,
    "DT_i32": np.dtype(np.int32), "DT_i64": np.dtype(np.int64),
    "DT_f32": np.dtype(np.float32), "DT_f64": np.dtype(np.float64),
    "DT_b": np.dtype(np.bool_),
    "_bc": _bc, "_fresh": _fresh, "_full": _full, "_massign": _massign,
    "_cast": _cast, "_param": _param, "_attr_global": _attr_global,
    "_gload": _gload, "_gload_u": _gload_u, "_gload_w": _gload_w,
    "_gstore": _gstore,
    "_sload": _sload, "_sstore": _sstore, "_shfl": _shfl, "_sync": _sync,
    "_flat": np.flatnonzero,
    "_compact_env": _compact_env, "_expand_env": _expand_env,
    "_warps_per_block": _warps_per_block, "_watchdog_trip": _watchdog_trip,
}
for _fn_name, _fn in _CALLS.items():
    _BASE_GLOBALS[f"C_{_fn_name}"] = _fn

_BINOP_NAMES = {
    "+": "ADD", "-": "SUB", "*": "MUL", "/": "DIV", "%": "MOD",
    "<<": "LSH", ">>": "RSH", "&": "BAND", "|": "BOR", "^": "BXOR",
    "<": "LT", "<=": "LE", ">": "GT", ">=": "GE", "==": "EQ", "!=": "NE",
}

_CONST_CTORS = {
    np.dtype(np.int32): "I32", np.dtype(np.int64): "I64",
    np.dtype(np.float32): "F32", np.dtype(np.float64): "F64",
    np.dtype(np.bool_): "BOOL",
}

_DTYPE_NAMES = {
    np.dtype(np.int32): "DT_i32", np.dtype(np.int64): "DT_i64",
    np.dtype(np.float32): "DT_f32", np.dtype(np.float64): "DT_f64",
    np.dtype(np.bool_): "DT_b",
}

_SPECIAL_NAMES = {
    "tx": "TX", "ty": "TY", "tid": "TID", "bx": "BX",
    "bdx": "BDX", "bdy": "BDY", "gdx": "GDX", "ntid": "NTID",
}

#: RHS roots guaranteed to produce freshly-owned arrays (ufunc outputs):
#: a full-mask assign can bind them without a defensive copy
_OWNED_ROOTS = (K.Bin, K.Un, K.Call, K.Select)

#: lines re-binding the chunk-shape locals after a compaction or an
#: expansion changed ``E`` (R is the same dict *object* only until
#: ``_compact_env`` clones it, so it must be re-fetched too)
_RECOMPUTE = (
    "R = E.regs; SHP = E.block_mask.shape; NB = SHP[0]",
    "WKr = E.warpkey.reshape(-1); BFr = E.block_of.reshape(-1)",
    "RWr = E.rows.reshape(-1); BX = E.bx",
)


# --------------------------------------------------------------------------
# the code generator
# --------------------------------------------------------------------------

class _Region:
    """Names of one branch region's per-region variables in the
    generated source.  ``f`` is the runtime full-mask flag expression
    (``"True"`` at top level), ``aw``/``aws`` the active-warp vector and
    total of the region, ``mi``/``wk``/``bf``/``rw`` the lazily-emitted
    active-lane gathers, ``eb``/``el`` the attribution block/lane counts
    (defined only under an ``A is not None`` guard)."""

    __slots__ = ("m", "f", "aw", "aws", "mi", "wk", "bf", "rw", "eb", "el")

    def __init__(self, m, f, aw, aws):
        self.m, self.f, self.aw, self.aws = m, f, aw, aws
        self.mi = self.wk = self.bf = self.rw = None
        self.eb = self.el = None


class _Emitter:
    def __init__(self, kernel: K.Kernel, device: DeviceProperties):
        self.kernel = kernel
        self.device = device
        self.uniform_ids = _lane_uniform_stmts(kernel)
        self.warp_ids = _warp_uniform_stmts(kernel)
        self.used_wok = False
        self.lines: list[str] = []
        self.ind = 1
        self.uid = 0
        self.next_slot = 0
        self.slot_sids: dict[int, int] = {}
        self.params: set[str] = set()
        self.bufs: set[str] = set()

    # -- plumbing ---------------------------------------------------------

    def w(self, line: str = "") -> None:
        self.lines.append("    " * self.ind + line if line else "")

    def fresh(self) -> int:
        self.uid += 1
        return self.uid

    def alloc_slot(self, sid: int) -> int:
        slot = self.next_slot
        self.next_slot += 1
        self.slot_sids[slot] = sid
        return slot

    # -- expressions ------------------------------------------------------

    def expr(self, e: K.Expr, rep: bool = False) -> str:
        """One expression; ``rep=True`` evaluates on warp-representative
        slices (one column per warp) — only valid for expressions the
        warp-uniformity verdict covers."""
        if isinstance(e, K.Const):
            ctor = _CONST_CTORS[e.dtype.np]
            if e.dtype.np.kind == "f":
                v = float(e.value)
                if v != v or v in (float("inf"), float("-inf")):
                    return f'{ctor}(float("{v!r}"))'
                return f"{ctor}({v!r})"
            if e.dtype.np.kind == "b":
                return f"{ctor}({bool(e.value)!r})"
            return f"{ctor}({int(e.value)!r})"
        if isinstance(e, K.Reg):
            if rep:
                return f"R[{e.name!r}][:, ::{int(self.device.warp_size)}]"
            return f"R[{e.name!r}]"
        if isinstance(e, K.Special):
            if rep and e.kind in _WARP_VARYING_SPECIALS:
                raise SimulationError(
                    f"special {e.kind!r} in a warp-representative "
                    "expression (analysis bug)")
            if rep and e.kind == "ty":
                return f"TY[::{int(self.device.warp_size)}]"
            return _SPECIAL_NAMES[e.kind]
        if isinstance(e, K.Param):
            self.params.add(e.name)
            return f"P_{e.name}"
        if isinstance(e, K.Bin):
            a, b = self.expr(e.a, rep), self.expr(e.b, rep)
            if e.op == "&&":
                return f"(TRU(ASR({a})) & TRU(ASR({b})))"
            if e.op == "||":
                return f"(TRU(ASR({a})) | TRU(ASR({b})))"
            return f"{_BINOP_NAMES[e.op]}({a}, {b})"
        if isinstance(e, K.Un):
            a = self.expr(e.a, rep)
            if e.op == "neg":
                return f"NEG({a})"
            if e.op == "not":
                return f"(~TRU(ASR({a})))"
            return f"INV({a})"
        if isinstance(e, K.Call):
            args = ", ".join(self.expr(a, rep) for a in e.args)
            return f"C_{e.fn}({args})"
        if isinstance(e, K.Cast):
            return f"_cast({self.expr(e.a, rep)}, {_DTYPE_NAMES[e.dtype.np]})"
        if isinstance(e, K.Select):
            c = self.expr(e.cond, rep)
            a, b = self.expr(e.a, rep), self.expr(e.b, rep)
            return f"WHERE(TRU(ASR({c})), {a}, {b})"
        raise SimulationError(f"unknown expression node {e!r}")

    # -- regions ----------------------------------------------------------

    def region_prologue(self, r: _Region, stmts: tuple) -> None:
        need_g = any(isinstance(s, (K.GLoad, K.GStore)) for s in stmts)
        need_s = any(isinstance(s, (K.SLoad, K.SStore)) for s in stmts)
        need_attr = any(not isinstance(s, (K.Comment, K.Sync))
                        for s in stmts)
        # when every memory statement of the region takes the
        # warp-representative path, the per-lane gathers are dead weight
        # on the WOK path — emit them only for the fallback layout
        wonly = need_g and not need_s and all(
            isinstance(s, K.GLoad) and id(s) in self.warp_ids
            for s in stmts if isinstance(s, (K.GLoad, K.GStore)))
        if need_g or need_s:
            u = self.fresh()
            r.mi, r.wk = f"mi{u}", f"wk{u}"
            gather_full = [f"{r.mi} = None", f"{r.wk} = WKr"]
            gather_part = [f"{r.mi} = _flat({r.m}.reshape(-1))",
                           f"{r.wk} = WKr.take({r.mi})"]
            if need_g:
                r.bf = f"bf{u}"
                gather_full.append(f"{r.bf} = BFr")
                gather_part.append(f"{r.bf} = BFr.take({r.mi})")
            if need_s:
                r.rw = f"rw{u}"
                gather_full.append(f"{r.rw} = RWr")
                gather_part.append(f"{r.rw} = RWr.take({r.mi})")
            if wonly:
                self.used_wok = True
                self.w("if not WOK:")
                self.ind += 1
            if r.f == "True":
                self.w("; ".join(gather_full))
            else:
                self.w(f"if {r.f}:")
                self.ind += 1
                self.w("; ".join(gather_full))
                self.ind -= 1
                self.w("else:")
                self.ind += 1
                self.w("; ".join(gather_part))
                self.ind -= 1
            if wonly:
                self.ind -= 1
        if need_attr:
            u = self.fresh()
            r.eb, r.el = f"eb{u}", f"el{u}"
            self.w("if A is not None:")
            self.ind += 1
            if r.f == "True":
                self.w(f"{r.eb} = NB; {r.el} = {r.m}.size")
            else:
                self.w(f"if {r.f}:")
                self.ind += 1
                self.w(f"{r.eb} = NB; {r.el} = {r.m}.size")
                self.ind -= 1
                self.w("else:")
                self.ind += 1
                self.w(f"{r.eb} = int({r.m}.any(axis=1).sum()); "
                       f"{r.el} = int({r.m}.sum())")
                self.ind -= 1
            self.ind -= 1

    def block(self, stmts: tuple, r: _Region) -> None:
        self.region_prologue(r, stmts)
        for s in stmts:
            self.stmt(s, r)

    def attr_row(self, r: _Region, sid: int, extra: tuple = ()) -> None:
        """The standard execs/lanes/warp_slots attribution block."""
        self.w("if A is not None:")
        self.ind += 1
        self.w(f"_r = A.row({sid}); _r.execs += {r.eb}; "
               f"_r.lanes += {r.el}; _r.warp_slots += {r.aws}")
        for line in extra:
            self.w(line)
        self.ind -= 1

    # -- statements -------------------------------------------------------

    def stmt(self, s: K.Stmt, r: _Region) -> None:
        if isinstance(s, K.Comment):
            return
        if isinstance(s, K.Assign):
            self.emit_assign(s, r)
        elif isinstance(s, K.GLoad):
            self.emit_gload(s, r)
        elif isinstance(s, K.GStore):
            self.emit_gstore(s, r)
        elif isinstance(s, K.SLoad):
            self.emit_sload(s, r)
        elif isinstance(s, K.SStore):
            self.emit_sstore(s, r)
        elif isinstance(s, K.If):
            self.emit_if(s, r)
        elif isinstance(s, K.While):
            self.emit_while(s, r)
        elif isinstance(s, K.UniformWhile):
            self.emit_uwhile(s, r)
        elif isinstance(s, K.Sync):
            self.emit_sync(s, r)
        elif isinstance(s, K.ShflDown):
            self.emit_shfl(s, r)
        else:
            raise SimulationError(f"unknown statement node {s!r}")

    def emit_assign(self, s: K.Assign, r: _Region) -> None:
        u = self.fresh()
        self.w(f"ST.warp_inst_slots += {r.aws}")
        self.attr_row(r, s.sid)
        self.w(f"v{u} = {self.expr(s.value)}")
        own = "_full" if isinstance(s.value, _OWNED_ROOTS) else "_fresh"
        if r.f == "True":
            self.w(f"R[{s.dst!r}] = {own}(v{u}, SHP)")
        else:
            self.w(f"if {r.f}:")
            self.ind += 1
            self.w(f"R[{s.dst!r}] = {own}(v{u}, SHP)")
            self.ind -= 1
            self.w("else:")
            self.ind += 1
            self.w(f"_massign(E, {s.dst!r}, v{u}, {r.m})")
            self.ind -= 1

    def _global_pre(self) -> None:
        self.w("if A is not None:")
        self.ind += 1
        self.w("_g0 = ST.global_transactions; _l0 = ST.l2_transactions")
        self.w("_b0 = ST.global_bytes; _d0 = ST.dram_bytes")
        self.ind -= 1

    def emit_gload(self, s: K.GLoad, r: _Region) -> None:
        u = self.fresh()
        slot = self.alloc_slot(s.sid)
        self.bufs.add(s.buf)
        helper = "_gload_u" if id(s) in self.uniform_ids else "_gload"
        self.w(f"ST.warp_inst_slots += {r.aws}")
        self._global_pre()
        if id(s) in self.warp_ids:
            # warp-representative path, guarded on the runtime layout
            # condition that makes ``ty`` warp-uniform
            self.used_wok = True
            self.w("if WOK:")
            self.ind += 1
            self.w(f"ix{u} = {self.expr(s.index, rep=True)}")
            self.w(f"_gload_w(E, {s.dst!r}, B_{s.buf}, ix{u}, {r.m}, "
                   f"{r.f}, {slot}, CK_{s.buf}, "
                   f"{int(self.device.warp_size)})")
            self.ind -= 1
            self.w("else:")
            self.ind += 1
            self.w(f"ix{u} = {self.expr(s.index)}")
            self.w(f"{helper}(E, {s.dst!r}, B_{s.buf}, ix{u}, {r.m}, "
                   f"{r.mi}, {r.wk}, {r.bf}, {slot}, CK_{s.buf})")
            self.ind -= 1
        else:
            self.w(f"ix{u} = {self.expr(s.index)}")
            self.w(f"{helper}(E, {s.dst!r}, B_{s.buf}, ix{u}, {r.m}, "
                   f"{r.mi}, {r.wk}, {r.bf}, {slot}, CK_{s.buf})")
        self.attr_row(r, s.sid,
                      ("_attr_global(_r, ST, _g0, _l0, _b0, _d0)",))

    def emit_gstore(self, s: K.GStore, r: _Region) -> None:
        u = self.fresh()
        slot = self.alloc_slot(s.sid)
        self.bufs.add(s.buf)
        self.w(f"ST.warp_inst_slots += {r.aws}")
        self._global_pre()
        self.w(f"ix{u} = {self.expr(s.index)}")
        self.w(f"v{u} = {self.expr(s.value)}")
        self.w(f"_gstore(E, B_{s.buf}, ix{u}, v{u}, {r.m}, {r.mi}, "
               f"{r.wk}, {r.bf}, {slot}, CK_{s.buf})")
        self.attr_row(r, s.sid,
                      ("_attr_global(_r, ST, _g0, _l0, _b0, _d0)",))

    def _shared_pre(self) -> None:
        self.w("if A is not None:")
        self.ind += 1
        self.w("_s0 = ST.shared_accesses; _c0 = ST.bank_conflict_extra")
        self.ind -= 1

    _SHARED_ATTR = (
        "_r.shared_accesses += ST.shared_accesses - _s0",
        "_r.bank_conflict_extra += ST.bank_conflict_extra - _c0",
    )

    def emit_sload(self, s: K.SLoad, r: _Region) -> None:
        u = self.fresh()
        self.w(f"ST.warp_inst_slots += {r.aws}")
        self._shared_pre()
        self.w(f"ix{u} = {self.expr(s.index)}")
        self.w(f"_sload(E, {s.dst!r}, {s.arr!r}, ix{u}, {r.m}, {r.mi}, "
               f"{r.wk}, {r.rw})")
        self.attr_row(r, s.sid, self._SHARED_ATTR)

    def emit_sstore(self, s: K.SStore, r: _Region) -> None:
        u = self.fresh()
        self.w(f"ST.warp_inst_slots += {r.aws}")
        self._shared_pre()
        self.w(f"ix{u} = {self.expr(s.index)}")
        self.w(f"v{u} = {self.expr(s.value)}")
        self.w(f"_sstore(E, {s.arr!r}, ix{u}, v{u}, {r.m}, {r.mi}, "
               f"{r.wk}, {r.rw})")
        self.attr_row(r, s.sid, self._SHARED_ATTR)

    def emit_if(self, s: K.If, r: _Region) -> None:
        u = self.fresh()
        mt, me = f"m{u}t", f"m{u}e"
        ft = f"f{u}t"
        awt, awst = f"aw{u}t", f"aws{u}t"
        self.w(f"ST.warp_inst_slots += {r.aws}")
        self.w(f"c{u} = _bc(TRU(ASR({self.expr(s.cond)})), {r.m}.shape)")
        # all-true fast path: the then-region inherits the parent region
        # wholesale and the warp reduceats are skipped (d is 0 in the
        # reference executor too: no else-side warps exist)
        self.w(f"if bool(c{u}.all()):")
        self.ind += 1
        self.w(f"{mt} = {r.m}; {ft} = {r.f}; {awt} = {r.aw}; "
               f"{awst} = {r.aws}; {me} = None; d{u} = 0")
        self.ind -= 1
        self.w("else:")
        self.ind += 1
        self.w(f"{mt} = {r.m} & c{u}")
        self.w(f"{me} = {r.m} & ~c{u}")
        self.w(f"t{u} = RED({mt}, E.warp_starts, axis=1) > 0")
        self.w(f"e{u} = RED({me}, E.warp_starts, axis=1) > 0")
        self.w(f"d{u} = int((t{u} & e{u}).sum())")
        self.w(f"{awt} = t{u}.sum(axis=1); {awst} = int({awt}.sum()); "
               f"{ft} = False")
        self.ind -= 1
        self.w(f"ST.divergent_branches += d{u}")
        self.attr_row(r, s.sid, (f"_r.divergence_splits += d{u}",))
        self.branch_region(s.then, mt, ft, awt, awst, f"{u}t")
        if s.orelse:
            awe, awse = f"aw{u}e", f"aws{u}e"
            self.w(f"if {me} is not None and {me}.any():")
            self.ind += 1
            self.w(f"{awe} = e{u}.sum(axis=1); {awse} = int({awe}.sum())")
            self.w(f"f{u}e = bool({me}.all())")
            self.branch_region(s.orelse, me, f"f{u}e", awe, awse,
                               f"{u}e", guarded=True)
            self.ind -= 1

    def branch_region(self, stmts: tuple, m: str, f: str, aw: str,
                      aws: str, tag: str, guarded: bool = False) -> None:
        """Emit one branch region, row-compacted when mostly idle.

        The reference executor runs a branch only for blocks whose lanes
        take it; the uncompacted chunk pays full-width array ops for
        every statement regardless.  When at most half the chunk's rows
        have an active lane, slice the environment down to them with the
        While-loop compaction machinery — semantically invisible (dead
        rows touch no memory, no counters, no registers) but it makes
        sparsely-taken branches (a last-block reduction epilogue, a
        ``tid == 0`` partial handoff) cost what they cover.  ``guarded``
        marks regions already emitted under an any-lanes check.
        """
        lv, lc, cp = f"lv{tag}", f"lc{tag}", f"cp{tag}"
        ix, px = f"ix{tag}", f"px{tag}"
        self.w(f"{lv} = {m}.any(axis=1); {lc} = int({lv}.sum())")
        if not guarded:
            self.w(f"if {lc}:")
            self.ind += 1
        self.w(f"{cp} = {lc} * 2 <= {m}.shape[0]")
        self.w(f"if {cp}:")
        self.ind += 1
        self.w(f"{ix} = _flat({lv}); {px} = E")
        self.w(f"E = _compact_env(E, {ix})")
        self.w(f"{m} = {m}[{ix}]; {aw} = np.asarray({aw})[{ix}]")
        self.w(f"{f} = bool({m}.all())")
        for line in _RECOMPUTE:
            self.w(line)
        self.ind -= 1
        self.block(stmts, _Region(m, f, aw, aws))
        self.w(f"if {cp}:")
        self.ind += 1
        self.w(f"_expand_env({px}, E, {ix}); E = {px}")
        for line in _RECOMPUTE:
            self.w(line)
        self.ind -= 1
        if not guarded:
            self.ind -= 1

    def emit_while(self, s: K.While, r: _Region) -> None:
        u = self.fresh()
        mw = f"m{u}w"
        cond = self.expr(s.cond)
        self.w(f"c{u} = _bc(TRU(ASR({cond})), {r.m}.shape)")
        self.w(f"{mw} = {r.m} & c{u}")
        self.w(f"ST.warp_inst_slots += {r.aws}")
        self.w("if A is not None:")
        self.ind += 1
        self.w(f"_r{u} = A.row({s.sid}); _r{u}.execs += {r.eb}; "
               f"_r{u}.lanes += {r.el}; _r{u}.warp_slots += {r.aws}")
        self.ind -= 1
        self.w("else:")
        self.ind += 1
        self.w(f"_r{u} = None")
        self.ind -= 1
        self.w(f"stk{u} = []")
        self.w(f"lv{u} = {mw}.any(axis=1)")
        self.w(f"lc{u} = int(lv{u}.sum())")
        self.w(f"while lc{u}:")
        self.ind += 1
        self.w(f"if lc{u} * 2 <= {mw}.shape[0]:")
        self.ind += 1
        self.w(f"ix_ = _flat(lv{u})")
        self.w(f"stk{u}.append((E, ix_))")
        self.w("E = _compact_env(E, ix_)")
        self.w(f"{mw} = {mw}[ix_]")
        for line in _RECOMPUTE:
            self.w(line)
        self.ind -= 1
        self.w(f"E.steps += lc{u}")
        self.w("if E.steps > E.watchdog_budget:")
        self.ind += 1
        self.w("_watchdog_trip(E)")
        self.ind -= 1
        self.w(f"f{u}b = bool({mw}.all())")
        # a full body mask means every warp of every row is active:
        # _warps_per_block would reduceat to a constant nwarps vector
        self.w(f"if f{u}b:")
        self.ind += 1
        self.w(f"aw{u}b = np.full({mw}.shape[0], E.nwarps, dtype=np.int64)")
        self.w(f"aws{u}b = {mw}.shape[0] * int(E.nwarps)")
        self.ind -= 1
        self.w("else:")
        self.ind += 1
        self.w(f"aw{u}b = _warps_per_block(E, {mw})")
        self.w(f"aws{u}b = int(aw{u}b.sum())")
        self.ind -= 1
        self.block(s.body, _Region(mw, f"f{u}b", f"aw{u}b", f"aws{u}b"))
        self.w(f"c{u} = _bc(TRU(ASR({cond})), {mw}.shape)")
        self.w(f"{mw} = {mw} & c{u}")
        self.w(f"ST.warp_inst_slots += aws{u}b")
        self.w(f"if _r{u} is not None:")
        self.ind += 1
        self.w(f"_r{u}.warp_slots += aws{u}b")
        self.ind -= 1
        self.w(f"lv{u} = {mw}.any(axis=1)")
        self.w(f"lc{u} = int(lv{u}.sum())")
        self.ind -= 1
        self.unwind(u)

    def emit_uwhile(self, s: K.UniformWhile, r: _Region) -> None:
        u = self.fresh()
        mw, aww = f"m{u}w", f"aw{u}w"
        cond = self.expr(s.cond)
        self.w(f"ST.warp_inst_slots += {r.aws}")
        self.w(f"lv{u} = {r.m}.any(axis=1)")
        self.w("if A is not None:")
        self.ind += 1
        self.w(f"_r{u} = A.row({s.sid}); _r{u}.execs += int(lv{u}.sum()); "
               f"_r{u}.lanes += {r.el}; _r{u}.warp_slots += {r.aws}")
        self.ind -= 1
        self.w("else:")
        self.ind += 1
        self.w(f"_r{u} = None")
        self.ind -= 1
        self.w(f"if lv{u}.any():")
        self.ind += 1
        self.w(f"stk{u} = []")
        self.w(f"{mw} = {r.m}")
        self.w(f"{aww} = {r.aw}")
        self.w("while True:")
        self.ind += 1
        self.w(f"E.steps += int(lv{u}.sum())")
        self.w("if E.steps > E.watchdog_budget:")
        self.ind += 1
        self.w("_watchdog_trip(E)")
        self.ind -= 1
        self.w(f"c{u} = _bc(TRU(ASR({cond})), {mw}.shape)")
        self.w(f"lv{u} = lv{u} & ({mw} & c{u}).any(axis=1)")
        self.w(f"lc{u} = int(lv{u}.sum())")
        self.w(f"if not lc{u}:")
        self.ind += 1
        self.w("break")
        self.ind -= 1
        self.w(f"if lc{u} * 2 <= {mw}.shape[0]:")
        self.ind += 1
        self.w(f"ix_ = _flat(lv{u})")
        self.w(f"stk{u}.append((E, ix_))")
        self.w("E = _compact_env(E, ix_)")
        self.w(f"{mw} = {mw}[ix_]; {aww} = {aww}[ix_]; lv{u} = lv{u}[ix_]")
        for line in _RECOMPUTE:
            self.w(line)
        self.ind -= 1
        self.w(f"if bool(lv{u}.all()):")
        self.ind += 1
        self.w(f"m{u}b = {mw}; aw{u}b = {aww}")
        self.ind -= 1
        self.w("else:")
        self.ind += 1
        self.w(f"m{u}b = {mw} & lv{u}[:, None]")
        self.w(f"aw{u}b = np.where(lv{u}, {aww}, 0)")
        self.ind -= 1
        self.w(f"aws{u}b = int(aw{u}b.sum())")
        self.w(f"f{u}b = bool(m{u}b.all())")
        self.block(s.body,
                   _Region(f"m{u}b", f"f{u}b", f"aw{u}b", f"aws{u}b"))
        self.w(f"ST.warp_inst_slots += aws{u}b")
        self.w(f"if _r{u} is not None:")
        self.ind += 1
        self.w(f"_r{u}.warp_slots += aws{u}b")
        self.ind -= 1
        self.ind -= 1
        self.unwind(u)
        self.ind -= 1

    def unwind(self, u: int) -> None:
        """Pop every compaction level and restore the chunk locals."""
        self.w(f"while stk{u}:")
        self.ind += 1
        self.w(f"_p, ix_ = stk{u}.pop()")
        self.w("_expand_env(_p, E, ix_)")
        self.w("E = _p")
        self.ind -= 1
        for line in _RECOMPUTE:
            self.w(line)

    def emit_sync(self, s: K.Sync, r: _Region) -> None:
        self.w(f"_sync(E, {r.m}, {r.aws}, "
               f"None if A is None else A.row({s.sid}))")

    def emit_shfl(self, s: K.ShflDown, r: _Region) -> None:
        self.w(f"ST.warp_inst_slots += {r.aws}")
        self.attr_row(r, s.sid)
        self.w(f"_shfl(E, {s.dst!r}, {s.src!r}, {int(s.delta)}, "
               f"{int(self.device.warp_size)}, {r.m}, {r.f})")

    # -- assembly ---------------------------------------------------------

    def emit(self) -> str:
        top = _Region("m0", "True", "aw0", "aws0")
        self.block(self.kernel.body, top)
        body = self.lines
        head = [
            f"# trace-compiled kernel {self.kernel.name!r} "
            "(generated by repro.gpu.executor_trace)",
            "_SLOT_SIDS = " + repr(self.slot_sids),
            "def _run_chunk(E):",
            "    GM = E.gmem; ST = E.stats; A = E.attr; R = E.regs",
            "    SHP = E.block_mask.shape; NB = SHP[0]",
            "    WKr = E.warpkey.reshape(-1); BFr = E.block_of.reshape(-1)",
            "    RWr = E.rows.reshape(-1)",
            "    TX = E.tx; TY = E.ty; TID = E.tid; BX = E.bx",
            "    BDX = E.bdx; BDY = E.bdy; GDX = E.gdx; NTID = E.ntid",
        ]
        for p in sorted(self.params):
            head.append(f"    P_{p} = _param(E, {p!r})")
        for b in sorted(self.bufs):
            head.append(f"    B_{b} = GM[{b!r}]")
            head.append(f"    CK_{b} = None if E.check is None "
                        f"else E.check.get({b!r})")
        if self.used_wok:
            head.append("    WOK = int(E.bdx) % "
                        f"{int(self.device.warp_size)} == 0")
        head.append("    m0 = E.block_mask; f0 = True")
        head.append("    aw0 = np.full(NB, E.nwarps, dtype=np.int64); "
                    "aws0 = NB * int(E.nwarps)")
        if not body:
            body = ["    pass"]
        return "\n".join(head + body) + "\n"


def emit_trace_source(kernel: K.Kernel, device: DeviceProperties) -> str:
    """Generate the per-chunk NumPy source for one eligible kernel.

    The output is deterministic in (kernel, device) and self-contained
    modulo the runtime helpers in :data:`_BASE_GLOBALS` — it embeds its
    own ``_SLOT_SIDS`` map (local segment-reuse slot -> stamped sid), so
    a source cached by the serve layer carries everything a fresh
    process needs.
    """
    return _Emitter(kernel, device).emit()


def compile_trace_source(src: str):
    """``exec`` one generated source; returns ``(fn, slot_sids)``."""
    ns = dict(_BASE_GLOBALS)
    exec(compile(src, "<trace-kernel>", "exec"), ns)
    return ns["_run_chunk"], ns["_SLOT_SIDS"]


# --------------------------------------------------------------------------
# launch driver
# --------------------------------------------------------------------------

def run_trace(ck, gmem: GlobalMemory, grid_dim: int,
              block_dim: tuple[int, int], stats: KernelStats,
              params: dict, budget: float, block_batch: int | None,
              check: dict | None = None) -> KernelStats:
    """Execute a validated trace-mode launch over block chunks.

    Mirrors :func:`~repro.gpu.executor_batched.run_batched`'s chunk
    discipline exactly (per-launch ``steps`` and segment-reuse state
    carry across chunks; checked-hazard state resets at chunk
    boundaries; the cross-block reuse correction runs once at launch
    end) so results and counters are invariant under ``block_batch``.
    Faults, stuck-warp mode, and TraceEvent collection never reach this
    driver — :meth:`~repro.gpu.executor.CompiledKernel.effective_mode`
    demotes those launches to the batched path.
    """
    bdx, bdy = block_dim
    chunk = int(block_batch) if block_batch and block_batch > 0 \
        else DEFAULT_BLOCK_BATCH
    fn = ck._trace_callable()
    seg_cache: dict = {}
    steps = 0
    for start in range(0, grid_dim, chunk):
        ids = np.arange(start, min(start + chunk, grid_dim),
                        dtype=np.int64)
        env = BatchedBlockEnv(bdx, bdy, grid_dim, ids, gmem, stats,
                              params, ck.device.warp_size, False)
        env.smem = BatchedSharedMemory(
            ck.device, ck.kernel.shared, stats, len(ids),
            faults=None, block_ids=ids)
        env.seg_cache = seg_cache
        env.kernel_name = ck.kernel.name
        env.steps = steps
        env.watchdog_budget = budget
        env.check = check
        env.attr = stats.attribution
        try:
            fn(env)
        except KeyError as e:  # register read before assignment
            raise SimulationError(
                f"register {e.args[0]!r} read before assignment") from None
        steps = env.steps
        if check is not None and start + chunk < grid_dim:
            # chunk boundary: earlier chunks are complete and every
            # later block outranks them — reset the hazard state
            for owners, maxread in check.values():
                owners.fill(-1)
                maxread.fill(-1)
    finalize_segment_reuse(seg_cache, stats, ck.device.transaction_bytes,
                           attr=stats.attribution,
                           slot_sids=ck._trace_slot_sids)
    return stats
