"""Warp-synchronous block executor for the kernel IR.

Execution model: one thread block at a time, all of its threads advanced in
lock step one statement at a time.  Per-thread registers are NumPy vectors of
length ``blockDim.x * blockDim.y``; divergent control flow is realized with
boolean *active masks* (the standard SIMT reconvergence-stack model).  This
is stronger than real hardware in exactly one way — stores become visible to
the whole block at the next statement — which the lowering does not rely on:
it still emits the ``__syncthreads`` barriers the algorithms require, and the
cost model charges for them.

For speed the IR is *compiled to Python closures once per kernel* (a tree
walk per statement execution would dominate the simulation time; see the
optimization guidance in the project's HPC coding guides: hoist work out of
the hot loop).

This module is the **reference** executor: it advances one block at a
time, which keeps the semantics obvious and auditable.  The default
production path is :mod:`repro.gpu.executor_batched`, which advances all
blocks of a launch at once over a leading block axis and is pinned
bit-identical to this one; select between them with
``CompiledKernel.run(..., mode="batched"|"reference")``.
"""

from __future__ import annotations

import itertools
import os

import numpy as np

from repro.dtypes import DType
from repro.errors import (
    BarrierDivergenceError, SimulationError, WatchdogTimeoutError,
)
from repro.gpu import kernelir as K
from repro.gpu.device import DeviceProperties
from repro.gpu.events import AttributionTable, KernelStats, TraceEvent
from repro.gpu.memory import GlobalMemory, SharedMemory
from repro.obs import timeline as _timeline

__all__ = ["CompiledKernel", "BlockEnv", "DEFAULT_WATCHDOG_BUDGET"]

#: Default per-launch watchdog budget, in loop-iteration *steps* (the only
#: way a kernel can run unboundedly in this IR — straight-line code is
#: finite).  The largest legitimate launches in the repo execute on the
#: order of 10^5 loop steps; the default leaves a ~10x margin while still
#: converting an infinite loop into a typed error in seconds, not hours.
DEFAULT_WATCHDOG_BUDGET = 1_000_000

#: per-GLoad/GStore statement ids keying the segment-reuse cache
_stmt_slots = itertools.count()


# --------------------------------------------------------------------------
# numeric helpers (C semantics where they differ from NumPy's)
# --------------------------------------------------------------------------

def _truthy(a: np.ndarray) -> np.ndarray:
    if a.dtype == np.bool_:
        return a
    return a != 0


def _c_div(a, b):
    """C division: truncating for integers, true division for floats."""
    a = np.asarray(a)
    if a.dtype.kind in "fc":
        return a / b
    with np.errstate(divide="ignore"):
        q = np.floor_divide(a, b)
        r = a - q * b
        # floor and trunc differ when signs differ and remainder is nonzero
        fix = (r != 0) & ((a < 0) != (np.asarray(b) < 0))
        return q + fix


def _c_mod(a, b):
    """C remainder (sign of the dividend)."""
    a = np.asarray(a)
    if a.dtype.kind in "fc":
        return np.fmod(a, b)
    with np.errstate(divide="ignore"):
        return a - _c_div(a, b) * b


_BINOPS = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": _c_div,
    "%": _c_mod,
    "<<": np.left_shift,
    ">>": np.right_shift,
    "&": np.bitwise_and,
    "|": np.bitwise_or,
    "^": np.bitwise_xor,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
    "==": np.equal,
    "!=": np.not_equal,
}

_CALLS = {
    "fmax": np.fmax, "fmaxf": np.fmax,
    "fmin": np.fmin, "fminf": np.fmin,
    "fabs": np.abs, "fabsf": np.abs, "abs": np.abs,
    "sqrt": np.sqrt, "sqrtf": np.sqrt,
    "exp": np.exp, "expf": np.exp,
    "log": np.log, "logf": np.log,
    "sin": np.sin, "cos": np.cos,
    "floor": np.floor, "ceil": np.ceil,
    "pow": np.power, "powf": np.power,
    "min": np.minimum, "max": np.maximum,
}

#: ufuncs for AtomicUpdate combination
ATOMIC_OPS = {
    "+": np.add,
    "*": np.multiply,
    "max": np.maximum,
    "min": np.minimum,
    "&": np.bitwise_and,
    "|": np.bitwise_or,
    "^": np.bitwise_xor,
}


# --------------------------------------------------------------------------
# per-block environment
# --------------------------------------------------------------------------

class BlockEnv:
    """Mutable state of one executing thread block."""

    __slots__ = (
        "regs", "tx", "ty", "tid", "bx", "bdx", "bdy", "gdx", "ntid",
        "warp_of", "warp_starts", "nwarps", "gmem", "smem", "stats",
        "params", "block_mask", "trace", "block_index", "seg_cache",
        "kernel_name", "steps", "watchdog_budget", "stuck", "attr",
    )

    def __init__(self, bdx: int, bdy: int, gdx: int, gmem: GlobalMemory,
                 smem: SharedMemory, stats: KernelStats,
                 params: dict, warp_size: int, trace: bool):
        n = bdx * bdy
        tid = np.arange(n, dtype=np.int32)
        self.tid = tid
        self.tx = (tid % bdx).astype(np.int32)
        self.ty = (tid // bdx).astype(np.int32)
        self.bdx = np.int32(bdx)
        self.bdy = np.int32(bdy)
        self.gdx = np.int32(gdx)
        self.ntid = np.int32(n)
        self.bx = np.int32(0)
        self.warp_of = (tid // warp_size).astype(np.int32)
        self.warp_starts = np.arange(0, n, warp_size)
        self.nwarps = len(self.warp_starts)
        self.gmem = gmem
        self.smem = smem
        self.stats = stats
        self.params = params
        self.block_mask = np.ones(n, dtype=bool)
        self.regs: dict[str, np.ndarray] = {}
        self.trace = trace
        self.block_index = 0
        self.seg_cache: dict[int, np.ndarray] = {}
        # watchdog + fault-injection state (set by CompiledKernel.run)
        self.kernel_name = ""
        self.steps = 0  # loop-iteration steps executed this launch
        self.watchdog_budget: float = DEFAULT_WATCHDOG_BUDGET
        self.stuck = False  # injected stuck-warp mode: loops never exit
        #: opt-in per-statement AttributionTable (None = accounting off;
        #: the compiled closures check at run time so the off path costs
        #: one attribute read per statement and allocates nothing)
        self.attr: AttributionTable | None = None

    def active_warps(self, mask: np.ndarray) -> int:
        """Number of warps with at least one active lane."""
        if mask.all():
            return self.nwarps
        return int((np.add.reduceat(mask, self.warp_starts) > 0).sum())

    def reset_for_block(self, bx: int) -> None:
        self.bx = np.int32(bx)
        self.block_index = bx
        self.regs.clear()


# --------------------------------------------------------------------------
# expression compilation
# --------------------------------------------------------------------------

def _compile_expr(e: K.Expr):
    """Compile an expression tree to a closure ``fn(env) -> ndarray/scalar``."""
    if isinstance(e, K.Const):
        v = e.dtype.np.type(e.value)
        return lambda env: v
    if isinstance(e, K.Reg):
        name = e.name
        def read_reg(env):
            try:
                return env.regs[name]
            except KeyError:
                raise SimulationError(
                    f"register {name!r} read before assignment"
                ) from None
        return read_reg
    if isinstance(e, K.Special):
        kind = e.kind
        return lambda env: getattr(env, kind)
    if isinstance(e, K.Param):
        name = e.name
        def read_param(env):
            try:
                return env.params[name]
            except KeyError:
                raise SimulationError(
                    f"kernel parameter {name!r} not bound at launch"
                ) from None
        return read_param
    if isinstance(e, K.Bin):
        fa, fb = _compile_expr(e.a), _compile_expr(e.b)
        if e.op == "&&":
            return lambda env: _truthy(np.asarray(fa(env))) & _truthy(np.asarray(fb(env)))
        if e.op == "||":
            return lambda env: _truthy(np.asarray(fa(env))) | _truthy(np.asarray(fb(env)))
        try:
            op = _BINOPS[e.op]
        except KeyError:
            raise SimulationError(f"unknown binary op {e.op!r}") from None
        return lambda env: op(fa(env), fb(env))
    if isinstance(e, K.Un):
        fa = _compile_expr(e.a)
        if e.op == "neg":
            return lambda env: np.negative(fa(env))
        if e.op == "not":
            return lambda env: ~_truthy(np.asarray(fa(env)))
        if e.op == "inv":
            return lambda env: np.invert(fa(env))
        raise SimulationError(f"unknown unary op {e.op!r}")
    if isinstance(e, K.Call):
        try:
            fn = _CALLS[e.fn]
        except KeyError:
            raise SimulationError(f"unknown intrinsic {e.fn!r}") from None
        fargs = [_compile_expr(a) for a in e.args]
        if len(fargs) == 1:
            f0 = fargs[0]
            return lambda env: fn(f0(env))
        if len(fargs) == 2:
            f0, f1 = fargs
            return lambda env: fn(f0(env), f1(env))
        return lambda env: fn(*[f(env) for f in fargs])
    if isinstance(e, K.Cast):
        fa = _compile_expr(e.a)
        dt = e.dtype.np
        def do_cast(env):
            v = np.asarray(fa(env))
            if v.dtype == dt:
                return v
            return v.astype(dt)  # C-style truncation for float->int
        return do_cast
    if isinstance(e, K.Select):
        fc, fa, fb = _compile_expr(e.cond), _compile_expr(e.a), _compile_expr(e.b)
        return lambda env: np.where(_truthy(np.asarray(fc(env))), fa(env), fb(env))
    raise SimulationError(f"unknown expression node {e!r}")


# --------------------------------------------------------------------------
# statement compilation
# --------------------------------------------------------------------------

def _assign(env: BlockEnv, name: str, value, mask: np.ndarray) -> None:
    val = np.asarray(value)
    reg = env.regs.get(name)
    if reg is None or reg.dtype != val.dtype:
        base = np.zeros(env.block_mask.shape, dtype=val.dtype)
        if reg is not None:  # dtype change: keep old values where inactive
            np.copyto(base, reg, casting="unsafe")
        env.regs[name] = base
        reg = base
    if np.count_nonzero(mask) == mask.size:
        # full mask: a straight copy beats element-masked copyto
        reg[:] = val
    else:
        # copyto broadcasts scalars/rows to reg's shape
        np.copyto(reg, val, where=mask)


def _attr_global(row, st: KernelStats, g0: int, l0: int,
                 b0: int, d0: int) -> None:
    """Fold a global-access counter delta into an attribution row."""
    row.global_transactions += st.global_transactions - g0
    row.l2_transactions += st.l2_transactions - l0
    row.global_bytes += st.global_bytes - b0
    row.dram_bytes += st.dram_bytes - d0


def _compile_stmt(s: K.Stmt, device: DeviceProperties,
                  slot_sids: dict | None = None):
    """Compile one statement to ``fn(env, mask, aw)``.

    ``slot_sids`` (filled at compile time) maps each global-access
    statement's segment-reuse ``slot`` back to its stamped ``sid`` so the
    batched executor's launch-end reuse correction can be attributed to
    the right statement.
    """
    sid = s.sid
    if isinstance(s, K.Comment):
        return lambda env, mask, aw: None

    if isinstance(s, K.Assign):
        fv = _compile_expr(s.value)
        name = s.dst
        def do_assign(env, mask, aw):
            env.stats.warp_inst_slots += aw
            if env.attr is not None:
                r = env.attr.row(sid)
                r.execs += 1
                r.lanes += int(mask.sum())
                r.warp_slots += aw
            _assign(env, name, fv(env), mask)
        return do_assign

    if isinstance(s, K.GLoad):
        fi = _compile_expr(s.index)
        name, buf = s.dst, s.buf
        slot = next(_stmt_slots)
        if slot_sids is not None:
            slot_sids[slot] = sid
        def do_gload(env, mask, aw):
            env.stats.warp_inst_slots += aw
            idx = np.asarray(fi(env))
            if idx.shape != mask.shape:
                idx = np.broadcast_to(idx, mask.shape)
            a = env.attr
            if a is not None:
                st = env.stats
                g0, l0 = st.global_transactions, st.l2_transactions
                b0, d0 = st.global_bytes, st.dram_bytes
                fr = env.gmem.faults
                f0 = len(fr.records) if fr is not None else 0
            out = env.gmem.load(buf, idx, mask, env.warp_of, env.stats,
                                reuse=(env.seg_cache, slot))
            if a is not None:
                r = a.row(sid)
                r.execs += 1
                r.lanes += int(mask.sum())
                r.warp_slots += aw
                _attr_global(r, st, g0, l0, b0, d0)
                if fr is not None:
                    r.fault_events += len(fr.records) - f0
            _assign(env, name, out, mask)
            if env.trace:
                env.stats.trace.append(TraceEvent("gload", env.block_index, buf))
        return do_gload

    if isinstance(s, K.GStore):
        fi, fv = _compile_expr(s.index), _compile_expr(s.value)
        buf = s.buf
        slot = next(_stmt_slots)
        if slot_sids is not None:
            slot_sids[slot] = sid
        def do_gstore(env, mask, aw):
            env.stats.warp_inst_slots += aw
            idx = np.asarray(fi(env))
            if idx.shape != mask.shape:
                idx = np.broadcast_to(idx, mask.shape)
            val = np.asarray(fv(env))
            if val.shape != mask.shape:
                val = np.broadcast_to(val, mask.shape)
            a = env.attr
            if a is not None:
                st = env.stats
                g0, l0 = st.global_transactions, st.l2_transactions
                b0, d0 = st.global_bytes, st.dram_bytes
            env.gmem.store(buf, idx, val, mask, env.warp_of, env.stats,
                           reuse=(env.seg_cache, slot))
            if a is not None:
                r = a.row(sid)
                r.execs += 1
                r.lanes += int(mask.sum())
                r.warp_slots += aw
                _attr_global(r, st, g0, l0, b0, d0)
            if env.trace:
                env.stats.trace.append(TraceEvent("gstore", env.block_index, buf))
        return do_gstore

    if isinstance(s, K.SLoad):
        fi = _compile_expr(s.index)
        name, arr = s.dst, s.arr
        def do_sload(env, mask, aw):
            env.stats.warp_inst_slots += aw
            idx = np.asarray(fi(env))
            if idx.shape != mask.shape:
                idx = np.broadcast_to(idx, mask.shape)
            a = env.attr
            if a is not None:
                st = env.stats
                s0, c0 = st.shared_accesses, st.bank_conflict_extra
                fr = env.smem.faults
                f0 = len(fr.records) if fr is not None else 0
            out = env.smem.load(arr, idx, mask, env.warp_of)
            if a is not None:
                r = a.row(sid)
                r.execs += 1
                r.lanes += int(mask.sum())
                r.warp_slots += aw
                r.shared_accesses += st.shared_accesses - s0
                r.bank_conflict_extra += st.bank_conflict_extra - c0
                if fr is not None:
                    r.fault_events += len(fr.records) - f0
            _assign(env, name, out, mask)
        return do_sload

    if isinstance(s, K.SStore):
        fi, fv = _compile_expr(s.index), _compile_expr(s.value)
        arr = s.arr
        def do_sstore(env, mask, aw):
            env.stats.warp_inst_slots += aw
            idx = np.asarray(fi(env))
            if idx.shape != mask.shape:
                idx = np.broadcast_to(idx, mask.shape)
            val = np.asarray(fv(env))
            if val.shape != mask.shape:
                val = np.broadcast_to(val, mask.shape)
            a = env.attr
            if a is not None:
                st = env.stats
                s0, c0 = st.shared_accesses, st.bank_conflict_extra
            env.smem.store(arr, idx, val, mask, env.warp_of)
            if a is not None:
                r = a.row(sid)
                r.execs += 1
                r.lanes += int(mask.sum())
                r.warp_slots += aw
                r.shared_accesses += st.shared_accesses - s0
                r.bank_conflict_extra += st.bank_conflict_extra - c0
        return do_sstore

    if isinstance(s, K.If):
        fc = _compile_expr(s.cond)
        fthen = _compile_block(s.then, device, slot_sids)
        felse = _compile_block(s.orelse, device, slot_sids) \
            if s.orelse else None
        def do_if(env, mask, aw):
            env.stats.warp_inst_slots += aw
            c = _truthy(np.asarray(fc(env)))
            if c.shape != mask.shape:
                c = np.broadcast_to(c, mask.shape)
            m_then = mask & c
            m_else = mask & ~c
            # divergence: warps with lanes on both sides
            t = np.add.reduceat(m_then, env.warp_starts) > 0
            e = np.add.reduceat(m_else, env.warp_starts) > 0
            d = int((t & e).sum())
            env.stats.divergent_branches += d
            if env.attr is not None:
                r = env.attr.row(sid)
                r.execs += 1
                r.lanes += int(mask.sum())
                r.warp_slots += aw
                r.divergence_splits += d
            if m_then.any():
                fthen(env, m_then, env.active_warps(m_then))
            if felse is not None and m_else.any():
                felse(env, m_else, env.active_warps(m_else))
        return do_if

    if isinstance(s, K.While):
        fc = _compile_expr(s.cond)
        fbody = _compile_block(s.body, device, slot_sids)
        def do_while(env, mask, aw):
            c = _truthy(np.asarray(fc(env)))
            if c.shape != mask.shape:
                c = np.broadcast_to(c, mask.shape)
            m = mask & c
            env.stats.warp_inst_slots += aw  # first condition check
            r = None
            if env.attr is not None:
                r = env.attr.row(sid)
                r.execs += 1
                r.lanes += int(mask.sum())
                r.warp_slots += aw
            while m.any():
                env.steps += 1
                if env.steps > env.watchdog_budget:
                    _watchdog_trip(env)
                maw = env.active_warps(m)
                fbody(env, m, maw)
                c = _truthy(np.asarray(fc(env)))
                if c.shape != m.shape:
                    c = np.broadcast_to(c, m.shape)
                m2 = m & c
                if env.stuck and not m2.any():
                    m2 = m  # injected stuck warp: the exit never fires
                m = m2
                env.stats.warp_inst_slots += maw  # re-check
                if r is not None:
                    r.warp_slots += maw
        return do_while

    if isinstance(s, K.UniformWhile):
        fc = _compile_expr(s.cond)
        fbody = _compile_block(s.body, device, slot_sids)
        def do_uwhile(env, mask, aw):
            env.stats.warp_inst_slots += aw
            r = None
            if env.attr is not None:
                r = env.attr.row(sid)
                r.execs += 1
                r.lanes += int(mask.sum())
                r.warp_slots += aw
            while True:
                env.steps += 1
                if env.steps > env.watchdog_budget:
                    _watchdog_trip(env)
                c = _truthy(np.asarray(fc(env)))
                if c.shape != mask.shape:
                    c = np.broadcast_to(c, mask.shape)
                if not (mask & c).any() and not env.stuck:
                    break
                fbody(env, mask, aw)
                env.stats.warp_inst_slots += aw
                if r is not None:
                    r.warp_slots += aw
        return do_uwhile

    if isinstance(s, K.Sync):
        def do_sync(env, mask, aw):
            if not mask.all():
                raise BarrierDivergenceError(
                    "__syncthreads() executed under divergent control flow "
                    f"({int(mask.sum())}/{mask.size} threads active)"
                )
            env.stats.barriers += 1
            env.stats.warp_inst_slots += aw
            if env.attr is not None:
                r = env.attr.row(sid)
                r.execs += 1
                r.lanes += int(mask.sum())
                r.warp_slots += aw
                r.barrier_arrivals += 1
                r.barrier_wait_slots += aw
            if env.trace:
                env.stats.trace.append(TraceEvent("sync", env.block_index, ""))
        return do_sync

    if isinstance(s, K.ShflDown):
        dst, src, delta = s.dst, s.src, s.delta
        ws = device.warp_size
        def do_shfl(env, mask, aw):
            env.stats.warp_inst_slots += aw
            if env.attr is not None:
                r = env.attr.row(sid)
                r.execs += 1
                r.lanes += int(mask.sum())
                r.warp_slots += aw
            try:
                reg = env.regs[src]
            except KeyError:
                raise SimulationError(
                    f"register {src!r} read before assignment") from None
            n = reg.shape[0]
            lane = np.arange(n) % ws
            src_idx = np.where(lane + delta < ws,
                               np.minimum(np.arange(n) + delta, n - 1),
                               np.arange(n))
            _assign(env, dst, reg[src_idx], mask)
        return do_shfl

    if isinstance(s, K.AtomicUpdate):
        fi, fv = _compile_expr(s.index), _compile_expr(s.value)
        buf = s.buf
        try:
            combine = ATOMIC_OPS[s.op]
        except KeyError:
            raise SimulationError(f"no atomic support for operator {s.op!r}") from None
        def do_atomic(env, mask, aw):
            env.stats.warp_inst_slots += aw
            idx = np.asarray(fi(env))
            if idx.shape != mask.shape:
                idx = np.broadcast_to(idx, mask.shape)
            val = np.asarray(fv(env))
            if val.shape != mask.shape:
                val = np.broadcast_to(val, mask.shape)
            a = env.attr
            if a is not None:
                st = env.stats
                g0, l0 = st.global_transactions, st.l2_transactions
                b0, d0 = st.global_bytes, st.dram_bytes
            env.gmem.atomic_update(buf, idx, val, mask, env.warp_of,
                                   env.stats, combine)
            if a is not None:
                r = a.row(sid)
                r.execs += 1
                r.lanes += int(mask.sum())
                r.warp_slots += aw
                _attr_global(r, st, g0, l0, b0, d0)
                # atomics serialize: every charged transaction is one
                # round of the read-modify-write queue
                r.atomic_rounds += st.global_transactions - g0
        return do_atomic

    raise SimulationError(f"unknown statement node {s!r}")


def _watchdog_trip(env: BlockEnv) -> None:
    raise WatchdogTimeoutError(
        f"kernel {env.kernel_name!r} exceeded its watchdog budget of "
        f"{env.watchdog_budget:g} loop steps in block {env.block_index} "
        "(infinite or runaway loop)",
        kernel=env.kernel_name, steps=env.steps,
        budget=int(env.watchdog_budget))


def _compile_block(stmts: tuple, device: DeviceProperties,
                   slot_sids: dict | None = None):
    fns = [_compile_stmt(s, device, slot_sids) for s in stmts]
    def run(env, mask, aw):
        for f in fns:
            f(env, mask, aw)
    return run


# --------------------------------------------------------------------------
# compiled kernel
# --------------------------------------------------------------------------

_EXECUTOR_MODES = ("trace", "batched", "reference")


def _default_mode() -> str:
    """The executor mode a ``mode=None`` launch resolves to.

    ``REPRO_EXECUTOR`` (``trace`` / ``batched`` / ``reference``) overrides
    the built-in default of ``"batched"`` — the CI matrix uses it to run
    the whole tier-1 suite per executor.  Unrecognized values are ignored
    rather than raised so an exported stale variable cannot break every
    launch in the process.
    """
    m = os.environ.get("REPRO_EXECUTOR", "").strip().lower()
    return m if m in _EXECUTOR_MODES else "batched"


class CompiledKernel:
    """A kernel compiled to Python closures, runnable over a grid.

    Compile once, launch many times (the heat-equation app re-launches its
    two kernels hundreds of times).
    """

    def __init__(self, kernel: K.Kernel, device: DeviceProperties):
        self.kernel = kernel
        self.device = device
        # segment-reuse slot -> stamped statement sid, filled as closures
        # compile (both executors share it: slots are globally unique)
        self._slot_sids: dict[int, int] = {}
        self._body = _compile_block(kernel.body, device, self._slot_sids)
        # block-axis closures, compiled lazily on the first batched run
        self._batched_body = None
        self._batch_safety = None  # lazy block-independence verdict
        # set when a checked batched launch hit a cross-block access at
        # runtime; later launches then go straight to the reference path
        self._dynamic_fallback = False
        # trace-compiled artifact: generated source (attachable from a
        # pass-pipeline/serve-cache product, else emitted lazily), the
        # exec'd chunk function, and its slot->sid map
        self._trace_src: str | None = None
        self._trace_fn = None
        self._trace_slot_sids: dict[int, int] | None = None
        self._trace_safety = None  # lazy trace-compilation verdict

    @property
    def batch_safety(self):
        """Static block-independence verdict (see
        :func:`repro.gpu.executor_batched.analyze_batch_safety`)."""
        if self._batch_safety is None:
            from repro.gpu.executor_batched import analyze_batch_safety
            self._batch_safety = analyze_batch_safety(self.kernel)
        return self._batch_safety

    @property
    def trace_safety(self):
        """Static trace-compilation verdict (see
        :func:`repro.gpu.executor_trace.analyze_trace_safety`)."""
        if self._trace_safety is None:
            from repro.gpu.executor_trace import analyze_trace_safety
            self._trace_safety = analyze_trace_safety(self.kernel)
        return self._trace_safety

    def attach_trace_source(self, src: str) -> None:
        """Adopt a pre-generated trace source (pass pipeline / serve
        cache); the first trace launch then skips codegen entirely."""
        if src and self._trace_src is None:
            self._trace_src = src

    @property
    def trace_source(self) -> str | None:
        """The generated trace source, if codegen has happened."""
        return self._trace_src

    def _trace_callable(self):
        """The exec'd per-chunk function (codegen + exec on first use)."""
        if self._trace_fn is None:
            from repro.gpu.executor_trace import (
                compile_trace_source, emit_trace_source)
            if self._trace_src is None:
                self._trace_src = emit_trace_source(self.kernel, self.device)
            self._trace_fn, self._trace_slot_sids = compile_trace_source(
                self._trace_src)
        return self._trace_fn

    def effective_mode(self, mode: str | None, grid_dim: int,
                       gmem: GlobalMemory, faults=None, *,
                       trace_events: bool = False) -> str:
        """The executor path a launch will actually take.

        ``"batched"`` (requested or defaulted) degrades to ``"reference"``
        when bit-identity cannot be kept: statically unsafe kernels
        (atomics mixed with plain accesses), looped atomics on floating
        buffers (whose combine order is rounding-sensitive), kernels that
        already failed the runtime block-disjointness check on an earlier
        launch, and checked kernels under an armed fault injector (whose
        RNG consumption cannot be rolled back if the checked attempt
        aborts).  :func:`repro.gpu.launch.launch` and the profiler report
        this resolved mode.

        ``"trace"`` adds one more rung: it degrades to the batched
        resolution whenever the generated code cannot honor the launch —
        statically ineligible kernels (atomics, unsupported constructs,
        or no block-independence proof), kernels already demoted by a
        runtime hazard, armed fault injectors, and ``trace_events``
        launches (TraceEvent collection is a per-access interpreter
        concern the generated code deliberately omits).
        """
        if mode is None:
            mode = _default_mode()
        if mode == "trace":
            if (self._dynamic_fallback or faults is not None
                    or trace_events or not self.trace_safety.eligible):
                mode = "batched"
            else:
                return "trace"
        if mode != "batched":
            return mode
        if self._dynamic_fallback:
            return "reference"
        safety = self.batch_safety
        if not safety.batchable:
            return "reference"
        if safety.checked_bufs and grid_dim > 1 and faults is not None:
            return "reference"
        for name in safety.looped_atomic_bufs:
            if name in gmem and np.dtype(gmem[name].dtype.np).kind == "f":
                return "reference"
        return "batched"

    def run(self, gmem: GlobalMemory, grid_dim: int, block_dim: tuple[int, int],
            params: dict | None = None, trace: bool = False, *,
            faults=None, watchdog_budget: int | None = None,
            mode: str | None = None, block_batch: int | None = None,
            attribution: bool = False) -> KernelStats:
        """Execute over ``grid_dim`` blocks of ``block_dim`` = (bdx, bdy).

        Blocks are independent by construction — that's the premise of
        the gang level.  ``mode`` selects how they are advanced:

        * ``"batched"`` (the default, ``None``) — all blocks of a chunk
          advance through each statement in one NumPy operation (see
          :mod:`repro.gpu.executor_batched`); ``block_batch`` bounds the
          chunk size (default
          :data:`~repro.gpu.executor_batched.DEFAULT_BLOCK_BATCH`).
        * ``"reference"`` — one block at a time, the original executor.

        Both modes produce bit-identical results and
        :class:`~repro.gpu.events.KernelStats` counters; the batched path
        only removes per-block Python dispatch overhead.  Kernels whose
        blocks communicate through global memory (the auto-parallelizer's
        serialized fallbacks, looped float atomics) are detected by
        :meth:`effective_mode` and silently run on the reference path, so
        the identity guarantee holds for every kernel.

        ``trace`` is the single opt-in knob for structured
        :class:`~repro.gpu.events.TraceEvent` collection: off (the default)
        the executor only accumulates aggregate counters and allocates
        nothing per access; on, every global load/store and barrier appends
        one event to ``stats.trace``.  :func:`repro.gpu.launch.launch` and
        ``Program.run`` plumb the same flag through, and
        :class:`repro.obs.Profiler` consumes the collected events.

        ``faults`` (a :class:`repro.faults.FaultInjector`, opt-in like the
        profiler) arms this launch for injected transient faults: it may
        raise :class:`~repro.errors.KernelLaunchError` at entry, flip bits
        of memory reads, or put the launch in stuck-warp mode.  The
        watchdog always runs: a launch exceeding ``watchdog_budget`` loop
        steps (default :data:`DEFAULT_WATCHDOG_BUDGET`; ``0`` or negative
        disables) raises :class:`~repro.errors.WatchdogTimeoutError`
        instead of hanging the caller.

        ``attribution`` (opt-in, like ``trace``) fills a per-statement
        :class:`~repro.gpu.events.AttributionTable` on
        ``stats.attribution``, keyed by the stamped statement ``sid``s.
        Both executor modes produce bit-identical tables; off (the
        default) the closures allocate nothing.
        """
        bdx, bdy = block_dim
        self.device.validate_block(bdx, bdy, self.kernel.shared_bytes)
        if grid_dim < 1:
            raise SimulationError(f"grid_dim must be >= 1, got {grid_dim}")
        if mode is None:
            mode = _default_mode()
        if mode not in _EXECUTOR_MODES:
            raise SimulationError(
                f"unknown executor mode {mode!r} "
                "(expected 'trace', 'batched' or 'reference')")
        requested = mode
        mode = self.effective_mode(mode, grid_dim, gmem, faults,
                                   trace_events=trace)
        tl = _timeline.current()
        if tl is not None:
            tl.decision("gpu", "executor-mode", kernel=self.kernel.name,
                        requested=requested, mode=mode, grid=grid_dim,
                        fallback=(mode != requested))
        if faults is not None:
            faults.on_launch(self.kernel.name)  # may raise KernelLaunchError
        stats = KernelStats(
            blocks=grid_dim,
            threads_per_block=bdx * bdy,
            shared_bytes=self.kernel.shared_bytes,
        )
        if attribution:
            stats.attribution = AttributionTable()
        params = dict(params or {})
        for b in self.kernel.buffers:
            if b not in gmem:
                raise SimulationError(
                    f"kernel {self.kernel.name!r} requires buffer {b!r} "
                    "which is not allocated"
                )
        if watchdog_budget is None:
            budget = float(DEFAULT_WATCHDOG_BUDGET)
        elif watchdog_budget <= 0:
            budget = float("inf")
        else:
            budget = float(watchdog_budget)
        stuck = (faults.on_stuck_query(self.kernel.name)
                 if faults is not None else False)
        if mode in ("batched", "trace"):
            from repro.gpu.executor_batched import _BatchHazard, run_batched
            safety = self.batch_safety
            check = snapshot = None
            if safety.checked_bufs and grid_dim > 1:
                # optimistic checked launch: track per-location owner and
                # highest-reader blocks for the unproven buffers, and
                # snapshot everything the kernel can write so an abort
                # can roll back
                check = {b: (np.full(gmem[b].size, -1, dtype=np.int64),
                             np.full(gmem[b].size, -1, dtype=np.int64))
                         for b in safety.checked_bufs if b in gmem}
                snapshot = {b: gmem[b].data.copy()
                            for b in safety.written_bufs if b in gmem}
            try:
                if mode == "trace":
                    from repro.gpu.executor_trace import run_trace
                    return run_trace(self, gmem, grid_dim, block_dim,
                                     stats, params, budget, block_batch,
                                     check=check)
                return run_batched(self, gmem, grid_dim, block_dim, stats,
                                   params, trace, faults, budget, stuck,
                                   block_batch, check=check)
            except _BatchHazard:
                # blocks really did share a location: restore the
                # pre-launch contents and rerun sequentially (sticky —
                # later launches of this kernel skip the attempt)
                self._dynamic_fallback = True
                for b, data in snapshot.items():
                    gmem[b].data[:] = data
                stats = KernelStats(
                    blocks=grid_dim,
                    threads_per_block=bdx * bdy,
                    shared_bytes=self.kernel.shared_bytes,
                )
                if attribution:
                    stats.attribution = AttributionTable()
        env = BlockEnv(bdx, bdy, grid_dim, gmem, None, stats, params,
                       self.device.warp_size, trace)
        env.seg_cache = {}  # fresh reuse state per launch
        env.kernel_name = self.kernel.name
        env.watchdog_budget = budget
        env.stuck = stuck
        env.attr = stats.attribution
        full = env.block_mask
        nw = env.nwarps
        # one shared-memory allocation serves the whole grid; contents
        # are zeroed between blocks exactly as a fresh allocation would be
        smem = SharedMemory(self.device, self.kernel.shared, stats,
                            faults=faults)
        env.smem = smem
        prev_faults = gmem.faults
        if faults is not None:
            gmem.faults = faults
        try:
            for bx in range(grid_dim):
                env.reset_for_block(bx)
                if bx:
                    smem.reset()
                if faults is not None:
                    gmem.fault_block = bx
                    smem.fault_block = bx
                self._body(env, full, nw)
        finally:
            gmem.faults = prev_faults
            gmem.fault_block = None
        return stats
