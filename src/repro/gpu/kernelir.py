"""Kernel IR: the CUDA-like instruction set emitted by the compiler.

The lowering phase (:mod:`repro.codegen`) translates OpenACC loop nests into
kernels expressed in this IR; the simulator (:mod:`repro.gpu.executor`)
executes them warp-synchronously.  The IR deliberately mirrors the shape of
the CUDA C the OpenUH compiler emits in the paper (Fig. 3 and Fig. 5):
window-sliding ``while`` loops over thread indices, shared-memory staging,
explicit ``__syncthreads``.

Control flow comes in two flavours:

* :class:`While` — per-thread masked loop: each thread iterates while *its
  own* condition holds.  Used for loops that contain no barriers.
* :class:`UniformWhile` — lock-step loop: the whole block iterates while
  *any* thread's condition holds, with every thread executing the body (so
  barriers inside are uniform); lowerings guard per-thread effects with an
  explicit ``active`` predicate.  This is how real GPU codegen keeps
  ``__syncthreads`` legal inside distributed loops whose trip count is not a
  multiple of the thread count.

Expressions are typed; the builder inserts explicit :class:`Cast` nodes so
the executor never relies on NumPy's promotion rules (which differ from C's).
"""

from __future__ import annotations

import dataclasses
import itertools
from dataclasses import dataclass, field

from repro.dtypes import DType

__all__ = [
    # expressions
    "Expr", "Const", "Reg", "Special", "Param", "Bin", "Un", "Call", "Cast",
    "Select",
    # statements
    "Stmt", "Assign", "GLoad", "GStore", "SLoad", "SStore", "If", "While",
    "UniformWhile", "Sync", "Comment", "AtomicUpdate", "ShflDown",
    # containers
    "SharedArraySpec", "Kernel",
    # helpers
    "const_int", "dump", "dump_with_sids", "stamp_sids", "walk_stmts",
    "stmt_text",
    # rewrite utilities / verifier (pass-pipeline support)
    "transform_block", "map_expr", "expr_reads", "stmt_reads",
    "stmt_writes", "verify_kernel",
    "SPECIALS",
]


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

class Expr:
    """Base class for kernel-IR expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Const(Expr):
    """A scalar literal of a specific machine type."""

    value: object
    dtype: DType


@dataclass(frozen=True)
class Reg(Expr):
    """Read a per-thread register."""

    name: str


#: Built-in thread-geometry values (CUDA names per Table 1 of the paper).
SPECIALS = ("tx", "ty", "bx", "bdx", "bdy", "gdx", "tid", "ntid")


@dataclass(frozen=True)
class Special(Expr):
    """A thread-geometry builtin.

    ``tx``/``ty`` = ``threadIdx.x/y``; ``bx`` = ``blockIdx.x``;
    ``bdx``/``bdy`` = ``blockDim.x/y``; ``gdx`` = ``gridDim.x``;
    ``tid`` = flattened thread id ``ty*bdx+tx``; ``ntid`` = ``bdx*bdy``.
    """

    kind: str

    def __post_init__(self):
        if self.kind not in SPECIALS:
            raise ValueError(f"unknown special {self.kind!r}")


@dataclass(frozen=True)
class Param(Expr):
    """A scalar kernel parameter (uniform across all threads)."""

    name: str


@dataclass(frozen=True)
class Bin(Expr):
    """Binary operation.  Operands must already share the result dtype
    (for arithmetic) — the IR builder inserts casts."""

    op: str
    a: Expr
    b: Expr


@dataclass(frozen=True)
class Un(Expr):
    """Unary operation: ``neg``, ``not``, ``inv`` (bitwise complement)."""

    op: str
    a: Expr


@dataclass(frozen=True)
class Call(Expr):
    """Intrinsic call (``fmax``, ``fabs``, ``sqrt``...)."""

    fn: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class Cast(Expr):
    """Convert to a machine type (C-style truncation for float→int)."""

    dtype: DType
    a: Expr


@dataclass(frozen=True)
class Select(Expr):
    """Branchless select: ``cond ? a : b`` evaluated elementwise."""

    cond: Expr
    a: Expr
    b: Expr


def const_int(v: int) -> Const:
    """Shorthand for an ``int`` literal (the index arithmetic workhorse)."""
    return Const(int(v), DType.INT)


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

class Stmt:
    """Base class for kernel-IR statements.

    Every concrete statement carries a *stable statement id* ``sid`` plus
    an optional source location ``loc`` (a short ``"file:line"``-style
    string).  Both are ``compare=False`` fields: statements stamped with
    different ids still compare (and hash) equal, so structural kernel
    identity — the launch compile-cache key and the golden-IR tests — is
    unaffected.  ``sid`` is ``-1`` until :func:`stamp_sids` assigns
    pre-order ids at the end of lowering; the executors key the opt-in
    per-statement attribution tables on it.
    """

    __slots__ = ()


@dataclass(frozen=True)
class Assign(Stmt):
    """Write a per-thread register (under the active mask)."""

    dst: str
    value: Expr
    sid: int = field(default=-1, compare=False)
    loc: str | None = field(default=None, compare=False)


@dataclass(frozen=True)
class GLoad(Stmt):
    """``dst = buffer[index]`` from global memory (coalescing-accounted)."""

    dst: str
    buf: str
    index: Expr
    sid: int = field(default=-1, compare=False)
    loc: str | None = field(default=None, compare=False)


@dataclass(frozen=True)
class GStore(Stmt):
    """``buffer[index] = value`` to global memory."""

    buf: str
    index: Expr
    value: Expr
    sid: int = field(default=-1, compare=False)
    loc: str | None = field(default=None, compare=False)


@dataclass(frozen=True)
class SLoad(Stmt):
    """``dst = shared_array[index]`` (bank-conflict-accounted)."""

    dst: str
    arr: str
    index: Expr
    sid: int = field(default=-1, compare=False)
    loc: str | None = field(default=None, compare=False)


@dataclass(frozen=True)
class SStore(Stmt):
    """``shared_array[index] = value``."""

    arr: str
    index: Expr
    value: Expr
    sid: int = field(default=-1, compare=False)
    loc: str | None = field(default=None, compare=False)


@dataclass(frozen=True)
class If(Stmt):
    """Masked two-way branch; divergence within a warp is recorded."""

    cond: Expr
    then: tuple[Stmt, ...]
    orelse: tuple[Stmt, ...] = ()
    sid: int = field(default=-1, compare=False)
    loc: str | None = field(default=None, compare=False)


@dataclass(frozen=True)
class While(Stmt):
    """Per-thread masked loop (no barriers allowed inside)."""

    cond: Expr
    body: tuple[Stmt, ...]
    sid: int = field(default=-1, compare=False)
    loc: str | None = field(default=None, compare=False)


@dataclass(frozen=True)
class UniformWhile(Stmt):
    """Lock-step loop: iterate while any thread's condition holds.

    All threads execute the body each iteration (barriers inside are legal);
    lowerings must guard per-thread effects with a predicate.
    """

    cond: Expr
    body: tuple[Stmt, ...]
    sid: int = field(default=-1, compare=False)
    loc: str | None = field(default=None, compare=False)


@dataclass(frozen=True)
class Sync(Stmt):
    """``__syncthreads()`` — errors if executed under divergent control flow."""

    sid: int = field(default=-1, compare=False)
    loc: str | None = field(default=None, compare=False)


@dataclass(frozen=True)
class Comment(Stmt):
    """No-op annotation kept for kernel dumps (costs nothing)."""

    text: str
    sid: int = field(default=-1, compare=False)
    loc: str | None = field(default=None, compare=False)


@dataclass(frozen=True)
class AtomicUpdate(Stmt):
    """``atomic buffer[index] = op(buffer[index], value)`` on global memory.

    Duplicate indices within one statement combine (unlike plain stores where
    the last writer wins).  Used by the extension/ablation lowerings; the
    paper's OpenUH strategies do not rely on atomics.
    """

    buf: str
    index: Expr
    op: str  # a reduction-operator token, e.g. "+", "max"
    value: Expr
    sid: int = field(default=-1, compare=False)
    loc: str | None = field(default=None, compare=False)


@dataclass(frozen=True)
class ShflDown(Stmt):
    """``dst = __shfl_down(src, delta)``: read ``src`` from the lane
    ``delta`` positions higher *within the same warp*; lanes whose source
    would cross the warp boundary keep their own value (CUDA semantics).

    Kepler-class hardware capability used by the warp-shuffle reduction
    extension (ablation A9) — register traffic only, no shared memory and
    no barriers.
    """

    dst: str
    src: str
    delta: int
    sid: int = field(default=-1, compare=False)
    loc: str | None = field(default=None, compare=False)


# --------------------------------------------------------------------------
# Kernels
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class SharedArraySpec:
    """A per-block shared-memory array declaration.

    ``overlay`` implements the paper's §3.3 space-sharing rule: arrays with
    the same overlay key occupy the *same* region, sized for the largest
    member (legal because reduction buffers of different operands are live
    at disjoint times).  ``None`` means a private region.
    """

    name: str
    dtype: DType
    size: int  # elements
    overlay: str | None = None

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize


@dataclass(frozen=True)
class Kernel:
    """A compiled device kernel.

    ``params`` are uniform scalars bound at launch; ``buffers`` names the
    global buffers the kernel may touch; ``shared`` declares the per-block
    shared arrays (their total size participates in occupancy).
    """

    name: str
    body: tuple[Stmt, ...]
    params: tuple[str, ...] = ()
    buffers: tuple[str, ...] = ()
    shared: tuple[SharedArraySpec, ...] = ()
    note: str = ""

    @property
    def shared_bytes(self) -> int:
        """Shared-memory footprint, with overlay groups counted once
        (at the size of their largest member)."""
        plain = sum(s.nbytes for s in self.shared if s.overlay is None)
        groups: dict[str, int] = {}
        for s in self.shared:
            if s.overlay is not None:
                groups[s.overlay] = max(groups.get(s.overlay, 0), s.nbytes)
        return plain + sum(groups.values())


# --------------------------------------------------------------------------
# Statement-id stamping (source-counter attribution support)
# --------------------------------------------------------------------------

def _stamp_block(stmts: tuple[Stmt, ...], counter) -> tuple[Stmt, ...]:
    out = []
    for s in stmts:
        sid = next(counter)  # pre-order: parent before children
        if isinstance(s, If):
            s = dataclasses.replace(
                s, sid=sid, then=_stamp_block(s.then, counter),
                orelse=_stamp_block(s.orelse, counter))
        elif isinstance(s, (While, UniformWhile)):
            s = dataclasses.replace(s, sid=sid,
                                    body=_stamp_block(s.body, counter))
        else:
            s = dataclasses.replace(s, sid=sid)
        out.append(s)
    return tuple(out)


def stamp_sids(kernel: Kernel) -> Kernel:
    """Return ``kernel`` with every statement stamped with a pre-order sid.

    Ids are dense (``0..n-1``), deterministic for a given body shape, and
    excluded from equality/hash, so the stamped kernel is structurally
    identical to the input (same compile-cache key, same golden dumps).
    The lowering applies this as its final step; the executors and the
    attribution layer rely on the ids being stable across compilations.
    """
    counter = itertools.count()
    return dataclasses.replace(kernel, body=_stamp_block(kernel.body, counter))


def walk_stmts(stmts: tuple[Stmt, ...], depth: int = 0):
    """Yield ``(stmt, depth)`` over a statement tree in pre-order."""
    for s in stmts:
        yield s, depth
        if isinstance(s, If):
            yield from walk_stmts(s.then, depth + 1)
            yield from walk_stmts(s.orelse, depth + 1)
        elif isinstance(s, (While, UniformWhile)):
            yield from walk_stmts(s.body, depth + 1)


# --------------------------------------------------------------------------
# Rewrite utilities (the optimization passes' workhorses)
# --------------------------------------------------------------------------

def transform_block(stmts: tuple[Stmt, ...], fn) -> tuple[Stmt, ...]:
    """Rebuild a statement tree bottom-up through ``fn``.

    Child blocks (``If.then``/``orelse``, loop bodies) are transformed
    first, then ``fn(stmt)`` is applied to the (possibly rebuilt)
    statement.  ``fn`` returns the statement unchanged, a replacement
    statement, ``None`` to delete it, or a tuple/list of statements to
    splice in its place.
    """
    out: list[Stmt] = []
    for s in stmts:
        if isinstance(s, If):
            s = dataclasses.replace(s, then=transform_block(s.then, fn),
                                    orelse=transform_block(s.orelse, fn))
        elif isinstance(s, (While, UniformWhile)):
            s = dataclasses.replace(s, body=transform_block(s.body, fn))
        r = fn(s)
        if r is None:
            continue
        if isinstance(r, (tuple, list)):
            out.extend(r)
        else:
            out.append(r)
    return tuple(out)


def map_expr(e: Expr, fn) -> Expr:
    """Rebuild an expression bottom-up through ``fn`` (applied to every
    node after its children were mapped)."""
    if isinstance(e, Bin):
        e = Bin(e.op, map_expr(e.a, fn), map_expr(e.b, fn))
    elif isinstance(e, Un):
        e = Un(e.op, map_expr(e.a, fn))
    elif isinstance(e, Call):
        e = Call(e.fn, tuple(map_expr(a, fn) for a in e.args))
    elif isinstance(e, Cast):
        e = Cast(e.dtype, map_expr(e.a, fn))
    elif isinstance(e, Select):
        e = Select(map_expr(e.cond, fn), map_expr(e.a, fn),
                   map_expr(e.b, fn))
    return fn(e)


def expr_reads(e: Expr, regs: set[str]) -> None:
    """Collect the register names an expression reads into ``regs``."""
    if isinstance(e, Reg):
        regs.add(e.name)
    elif isinstance(e, Bin):
        expr_reads(e.a, regs)
        expr_reads(e.b, regs)
    elif isinstance(e, Un):
        expr_reads(e.a, regs)
    elif isinstance(e, Call):
        for a in e.args:
            expr_reads(a, regs)
    elif isinstance(e, Cast):
        expr_reads(e.a, regs)
    elif isinstance(e, Select):
        expr_reads(e.cond, regs)
        expr_reads(e.a, regs)
        expr_reads(e.b, regs)


def _stmt_exprs(s: Stmt) -> tuple[Expr, ...]:
    if isinstance(s, Assign):
        return (s.value,)
    if isinstance(s, GLoad):
        return (s.index,)
    if isinstance(s, GStore):
        return (s.index, s.value)
    if isinstance(s, SLoad):
        return (s.index,)
    if isinstance(s, SStore):
        return (s.index, s.value)
    if isinstance(s, (If, While, UniformWhile)):
        return (s.cond,)
    if isinstance(s, AtomicUpdate):
        return (s.index, s.value)
    return ()


def stmt_reads(s: Stmt, *, recurse: bool = False) -> set[str]:
    """Register names a statement reads (its own expressions; with
    ``recurse=True``, also everything inside its child blocks)."""
    regs: set[str] = set()
    for e in _stmt_exprs(s):
        expr_reads(e, regs)
    if isinstance(s, ShflDown):
        regs.add(s.src)
    if recurse and isinstance(s, (If, While, UniformWhile)):
        blocks = (s.then, s.orelse) if isinstance(s, If) else (s.body,)
        for block in blocks:
            for inner, _ in walk_stmts(block):
                regs |= stmt_reads(inner)
    return regs


def stmt_writes(s: Stmt) -> str | None:
    """The register a statement defines, or ``None``."""
    if isinstance(s, (Assign, GLoad, SLoad, ShflDown)):
        return s.dst
    return None


# --------------------------------------------------------------------------
# IR verifier (run between pipeline passes)
# --------------------------------------------------------------------------

_KNOWN_STMTS = (Assign, GLoad, GStore, SLoad, SStore, If, While,
                UniformWhile, Sync, Comment, AtomicUpdate, ShflDown)


def verify_kernel(kernel: Kernel, *, expect_sids: bool = False) -> None:
    """Structural sanity checks over a kernel; raises
    :class:`~repro.errors.IRVerificationError` on the first violation.

    Run by the pass manager after every kernel-modifying pass so a broken
    rewrite is pinned to the pass that produced it, not to a downstream
    simulator crash.  Checks:

    * every statement/expression node is a known IR type;
    * global buffers touched are declared in ``kernel.buffers``;
    * shared arrays touched are declared in ``kernel.shared``;
    * every register read is written *somewhere* in the kernel
      (flow-insensitive — lowerings guard definitions with masks);
    * no ``Sync`` inside a per-thread masked ``While`` (barriers are only
      legal in lock-step ``UniformWhile`` loops);
    * with ``expect_sids=True`` (after the stamping pass): sids are the
      dense pre-order ``0..n-1``.
    """
    from repro.errors import IRVerificationError

    shared_names = {sa.name for sa in kernel.shared}
    buffers = set(kernel.buffers)
    defined: set[str] = set()
    for s, _ in walk_stmts(kernel.body):
        if not isinstance(s, _KNOWN_STMTS):
            raise IRVerificationError(
                f"{kernel.name}: unknown statement node {s!r}")
        w = stmt_writes(s)
        if w is not None:
            defined.add(w)

    def bad(msg: str) -> IRVerificationError:
        return IRVerificationError(f"{kernel.name}: {msg}")

    def check_block(stmts, in_masked_loop: bool):
        for s in stmts:
            if isinstance(s, Sync) and in_masked_loop:
                raise bad("__syncthreads() inside a per-thread While loop "
                          f"(sid={s.sid})")
            if isinstance(s, (GLoad, GStore, AtomicUpdate)) \
                    and s.buf not in buffers:
                raise bad(f"undeclared global buffer {s.buf!r} in "
                          f"`{stmt_text(s)}`")
            if isinstance(s, (SLoad, SStore)) and s.arr not in shared_names:
                raise bad(f"undeclared shared array {s.arr!r} in "
                          f"`{stmt_text(s)}`")
            reads = stmt_reads(s)
            missing = reads - defined
            if missing:
                raise bad(f"register(s) {sorted(missing)} read but never "
                          f"written, in `{stmt_text(s)}`")
            if isinstance(s, If):
                check_block(s.then, in_masked_loop)
                check_block(s.orelse, in_masked_loop)
            elif isinstance(s, While):
                check_block(s.body, True)
            elif isinstance(s, UniformWhile):
                check_block(s.body, in_masked_loop)

    check_block(kernel.body, False)

    if expect_sids:
        sids = [s.sid for s, _ in walk_stmts(kernel.body)]
        if sids != list(range(len(sids))):
            raise bad(f"statement ids are not the dense pre-order "
                      f"0..{len(sids) - 1}: {sids[:8]}...")


# --------------------------------------------------------------------------
# Pretty printer (used by the inspect example and golden tests)
# --------------------------------------------------------------------------

def _fmt_expr(e: Expr) -> str:
    if isinstance(e, Const):
        v = e.value
        if hasattr(v, "item"):
            v = v.item()
        if e.dtype is DType.LONG:
            return f"{v}L"
        if e.dtype is DType.FLOAT:
            return f"{float(v)}f"
        if e.dtype is DType.DOUBLE:
            return f"{float(v)}"
        return repr(v)
    if isinstance(e, Reg):
        return e.name
    if isinstance(e, Special):
        names = {
            "tx": "threadIdx.x", "ty": "threadIdx.y", "bx": "blockIdx.x",
            "bdx": "blockDim.x", "bdy": "blockDim.y", "gdx": "gridDim.x",
            "tid": "tid", "ntid": "ntid",
        }
        return names[e.kind]
    if isinstance(e, Param):
        return f"${e.name}"
    if isinstance(e, Bin):
        return f"({_fmt_expr(e.a)} {e.op} {_fmt_expr(e.b)})"
    if isinstance(e, Un):
        sym = {"neg": "-", "not": "!", "inv": "~"}[e.op]
        return f"{sym}{_fmt_expr(e.a)}"
    if isinstance(e, Call):
        return f"{e.fn}({', '.join(_fmt_expr(a) for a in e.args)})"
    if isinstance(e, Cast):
        return f"({e.dtype.ctype}){_fmt_expr(e.a)}"
    if isinstance(e, Select):
        return f"({_fmt_expr(e.cond)} ? {_fmt_expr(e.a)} : {_fmt_expr(e.b)})"
    raise TypeError(f"unknown expr {e!r}")


def _head_text(s: Stmt) -> str:
    """The one-line rendering of a statement (loop/branch heads included)."""
    if isinstance(s, Assign):
        return f"{s.dst} = {_fmt_expr(s.value)};"
    if isinstance(s, GLoad):
        return f"{s.dst} = {s.buf}[{_fmt_expr(s.index)}];  // global"
    if isinstance(s, GStore):
        return f"{s.buf}[{_fmt_expr(s.index)}] = {_fmt_expr(s.value)};  // global"
    if isinstance(s, SLoad):
        return f"{s.dst} = {s.arr}[{_fmt_expr(s.index)}];  // shared"
    if isinstance(s, SStore):
        return f"{s.arr}[{_fmt_expr(s.index)}] = {_fmt_expr(s.value)};  // shared"
    if isinstance(s, If):
        return f"if ({_fmt_expr(s.cond)})"
    if isinstance(s, While):
        return f"while ({_fmt_expr(s.cond)})"
    if isinstance(s, UniformWhile):
        return f"while-any ({_fmt_expr(s.cond)})"
    if isinstance(s, Sync):
        return "__syncthreads();"
    if isinstance(s, Comment):
        return f"// {s.text}"
    if isinstance(s, AtomicUpdate):
        return (f"atomic {s.buf}[{_fmt_expr(s.index)}] "
                f"{s.op}= {_fmt_expr(s.value)};")
    if isinstance(s, ShflDown):
        return f"{s.dst} = __shfl_down({s.src}, {s.delta});"
    raise TypeError(f"unknown stmt {s!r}")


def stmt_text(s: Stmt) -> str:
    """Short single-line text of a statement (used to *name* statements
    in attribution reports and roofline verdicts)."""
    return _head_text(s)


def _dump_stmts(stmts: tuple[Stmt, ...], indent: int, out: list[str],
                sid_lines: dict[int, int] | None = None) -> None:
    pad = "  " * indent
    for s in stmts:
        if sid_lines is not None and s.sid >= 0:
            sid_lines[s.sid] = len(out)
        if isinstance(s, If):
            out.append(f"{pad}if ({_fmt_expr(s.cond)}) {{")
            _dump_stmts(s.then, indent + 1, out, sid_lines)
            if s.orelse:
                out.append(f"{pad}}} else {{")
                _dump_stmts(s.orelse, indent + 1, out, sid_lines)
            out.append(f"{pad}}}")
        elif isinstance(s, While):
            out.append(f"{pad}while ({_fmt_expr(s.cond)}) {{")
            _dump_stmts(s.body, indent + 1, out, sid_lines)
            out.append(f"{pad}}}")
        elif isinstance(s, UniformWhile):
            out.append(f"{pad}while-any ({_fmt_expr(s.cond)}) {{")
            _dump_stmts(s.body, indent + 1, out, sid_lines)
            out.append(f"{pad}}}")
        else:
            out.append(pad + _head_text(s))


def _dump_header(kernel: Kernel) -> list[str]:
    out = [f"__global__ void {kernel.name}"
           f"({', '.join(kernel.params)}) // buffers: {', '.join(kernel.buffers)}"]
    for sa in kernel.shared:
        out.append(f"  __shared__ {sa.dtype.ctype} {sa.name}[{sa.size}];")
    if kernel.note:
        out.append(f"  // {kernel.note}")
    out.append("{")
    return out


def dump(kernel: Kernel) -> str:
    """Render a kernel as pseudo-CUDA text."""
    out = _dump_header(kernel)
    _dump_stmts(kernel.body, 1, out)
    out.append("}")
    return "\n".join(out)


def dump_with_sids(kernel: Kernel) -> tuple[list[str], dict[int, int]]:
    """Render a kernel as pseudo-CUDA *lines* plus a sid → line-index map.

    The map points each stamped statement at the 0-based index of its
    first rendered line, so the attribution layer can attach per-line
    gutters (``%time / transactions / conflicts``) to the listing.
    """
    out = _dump_header(kernel)
    sid_lines: dict[int, int] = {}
    _dump_stmts(kernel.body, 1, out, sid_lines)
    out.append("}")
    return out, sid_lines
