"""Kernel IR: the CUDA-like instruction set emitted by the compiler.

The lowering phase (:mod:`repro.codegen`) translates OpenACC loop nests into
kernels expressed in this IR; the simulator (:mod:`repro.gpu.executor`)
executes them warp-synchronously.  The IR deliberately mirrors the shape of
the CUDA C the OpenUH compiler emits in the paper (Fig. 3 and Fig. 5):
window-sliding ``while`` loops over thread indices, shared-memory staging,
explicit ``__syncthreads``.

Control flow comes in two flavours:

* :class:`While` — per-thread masked loop: each thread iterates while *its
  own* condition holds.  Used for loops that contain no barriers.
* :class:`UniformWhile` — lock-step loop: the whole block iterates while
  *any* thread's condition holds, with every thread executing the body (so
  barriers inside are uniform); lowerings guard per-thread effects with an
  explicit ``active`` predicate.  This is how real GPU codegen keeps
  ``__syncthreads`` legal inside distributed loops whose trip count is not a
  multiple of the thread count.

Expressions are typed; the builder inserts explicit :class:`Cast` nodes so
the executor never relies on NumPy's promotion rules (which differ from C's).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dtypes import DType

__all__ = [
    # expressions
    "Expr", "Const", "Reg", "Special", "Param", "Bin", "Un", "Call", "Cast",
    "Select",
    # statements
    "Stmt", "Assign", "GLoad", "GStore", "SLoad", "SStore", "If", "While",
    "UniformWhile", "Sync", "Comment", "AtomicUpdate", "ShflDown",
    # containers
    "SharedArraySpec", "Kernel",
    # helpers
    "const_int", "dump",
    "SPECIALS",
]


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

class Expr:
    """Base class for kernel-IR expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class Const(Expr):
    """A scalar literal of a specific machine type."""

    value: object
    dtype: DType


@dataclass(frozen=True)
class Reg(Expr):
    """Read a per-thread register."""

    name: str


#: Built-in thread-geometry values (CUDA names per Table 1 of the paper).
SPECIALS = ("tx", "ty", "bx", "bdx", "bdy", "gdx", "tid", "ntid")


@dataclass(frozen=True)
class Special(Expr):
    """A thread-geometry builtin.

    ``tx``/``ty`` = ``threadIdx.x/y``; ``bx`` = ``blockIdx.x``;
    ``bdx``/``bdy`` = ``blockDim.x/y``; ``gdx`` = ``gridDim.x``;
    ``tid`` = flattened thread id ``ty*bdx+tx``; ``ntid`` = ``bdx*bdy``.
    """

    kind: str

    def __post_init__(self):
        if self.kind not in SPECIALS:
            raise ValueError(f"unknown special {self.kind!r}")


@dataclass(frozen=True)
class Param(Expr):
    """A scalar kernel parameter (uniform across all threads)."""

    name: str


@dataclass(frozen=True)
class Bin(Expr):
    """Binary operation.  Operands must already share the result dtype
    (for arithmetic) — the IR builder inserts casts."""

    op: str
    a: Expr
    b: Expr


@dataclass(frozen=True)
class Un(Expr):
    """Unary operation: ``neg``, ``not``, ``inv`` (bitwise complement)."""

    op: str
    a: Expr


@dataclass(frozen=True)
class Call(Expr):
    """Intrinsic call (``fmax``, ``fabs``, ``sqrt``...)."""

    fn: str
    args: tuple[Expr, ...]


@dataclass(frozen=True)
class Cast(Expr):
    """Convert to a machine type (C-style truncation for float→int)."""

    dtype: DType
    a: Expr


@dataclass(frozen=True)
class Select(Expr):
    """Branchless select: ``cond ? a : b`` evaluated elementwise."""

    cond: Expr
    a: Expr
    b: Expr


def const_int(v: int) -> Const:
    """Shorthand for an ``int`` literal (the index arithmetic workhorse)."""
    return Const(int(v), DType.INT)


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

class Stmt:
    """Base class for kernel-IR statements."""

    __slots__ = ()


@dataclass(frozen=True)
class Assign(Stmt):
    """Write a per-thread register (under the active mask)."""

    dst: str
    value: Expr


@dataclass(frozen=True)
class GLoad(Stmt):
    """``dst = buffer[index]`` from global memory (coalescing-accounted)."""

    dst: str
    buf: str
    index: Expr


@dataclass(frozen=True)
class GStore(Stmt):
    """``buffer[index] = value`` to global memory."""

    buf: str
    index: Expr
    value: Expr


@dataclass(frozen=True)
class SLoad(Stmt):
    """``dst = shared_array[index]`` (bank-conflict-accounted)."""

    dst: str
    arr: str
    index: Expr


@dataclass(frozen=True)
class SStore(Stmt):
    """``shared_array[index] = value``."""

    arr: str
    index: Expr
    value: Expr


@dataclass(frozen=True)
class If(Stmt):
    """Masked two-way branch; divergence within a warp is recorded."""

    cond: Expr
    then: tuple[Stmt, ...]
    orelse: tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class While(Stmt):
    """Per-thread masked loop (no barriers allowed inside)."""

    cond: Expr
    body: tuple[Stmt, ...]


@dataclass(frozen=True)
class UniformWhile(Stmt):
    """Lock-step loop: iterate while any thread's condition holds.

    All threads execute the body each iteration (barriers inside are legal);
    lowerings must guard per-thread effects with a predicate.
    """

    cond: Expr
    body: tuple[Stmt, ...]


@dataclass(frozen=True)
class Sync(Stmt):
    """``__syncthreads()`` — errors if executed under divergent control flow."""


@dataclass(frozen=True)
class Comment(Stmt):
    """No-op annotation kept for kernel dumps (costs nothing)."""

    text: str


@dataclass(frozen=True)
class AtomicUpdate(Stmt):
    """``atomic buffer[index] = op(buffer[index], value)`` on global memory.

    Duplicate indices within one statement combine (unlike plain stores where
    the last writer wins).  Used by the extension/ablation lowerings; the
    paper's OpenUH strategies do not rely on atomics.
    """

    buf: str
    index: Expr
    op: str  # a reduction-operator token, e.g. "+", "max"
    value: Expr


@dataclass(frozen=True)
class ShflDown(Stmt):
    """``dst = __shfl_down(src, delta)``: read ``src`` from the lane
    ``delta`` positions higher *within the same warp*; lanes whose source
    would cross the warp boundary keep their own value (CUDA semantics).

    Kepler-class hardware capability used by the warp-shuffle reduction
    extension (ablation A9) — register traffic only, no shared memory and
    no barriers.
    """

    dst: str
    src: str
    delta: int


# --------------------------------------------------------------------------
# Kernels
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class SharedArraySpec:
    """A per-block shared-memory array declaration.

    ``overlay`` implements the paper's §3.3 space-sharing rule: arrays with
    the same overlay key occupy the *same* region, sized for the largest
    member (legal because reduction buffers of different operands are live
    at disjoint times).  ``None`` means a private region.
    """

    name: str
    dtype: DType
    size: int  # elements
    overlay: str | None = None

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize


@dataclass(frozen=True)
class Kernel:
    """A compiled device kernel.

    ``params`` are uniform scalars bound at launch; ``buffers`` names the
    global buffers the kernel may touch; ``shared`` declares the per-block
    shared arrays (their total size participates in occupancy).
    """

    name: str
    body: tuple[Stmt, ...]
    params: tuple[str, ...] = ()
    buffers: tuple[str, ...] = ()
    shared: tuple[SharedArraySpec, ...] = ()
    note: str = ""

    @property
    def shared_bytes(self) -> int:
        """Shared-memory footprint, with overlay groups counted once
        (at the size of their largest member)."""
        plain = sum(s.nbytes for s in self.shared if s.overlay is None)
        groups: dict[str, int] = {}
        for s in self.shared:
            if s.overlay is not None:
                groups[s.overlay] = max(groups.get(s.overlay, 0), s.nbytes)
        return plain + sum(groups.values())


# --------------------------------------------------------------------------
# Pretty printer (used by the inspect example and golden tests)
# --------------------------------------------------------------------------

def _fmt_expr(e: Expr) -> str:
    if isinstance(e, Const):
        v = e.value
        if hasattr(v, "item"):
            v = v.item()
        if e.dtype is DType.LONG:
            return f"{v}L"
        if e.dtype is DType.FLOAT:
            return f"{float(v)}f"
        if e.dtype is DType.DOUBLE:
            return f"{float(v)}"
        return repr(v)
    if isinstance(e, Reg):
        return e.name
    if isinstance(e, Special):
        names = {
            "tx": "threadIdx.x", "ty": "threadIdx.y", "bx": "blockIdx.x",
            "bdx": "blockDim.x", "bdy": "blockDim.y", "gdx": "gridDim.x",
            "tid": "tid", "ntid": "ntid",
        }
        return names[e.kind]
    if isinstance(e, Param):
        return f"${e.name}"
    if isinstance(e, Bin):
        return f"({_fmt_expr(e.a)} {e.op} {_fmt_expr(e.b)})"
    if isinstance(e, Un):
        sym = {"neg": "-", "not": "!", "inv": "~"}[e.op]
        return f"{sym}{_fmt_expr(e.a)}"
    if isinstance(e, Call):
        return f"{e.fn}({', '.join(_fmt_expr(a) for a in e.args)})"
    if isinstance(e, Cast):
        return f"({e.dtype.ctype}){_fmt_expr(e.a)}"
    if isinstance(e, Select):
        return f"({_fmt_expr(e.cond)} ? {_fmt_expr(e.a)} : {_fmt_expr(e.b)})"
    raise TypeError(f"unknown expr {e!r}")


def _dump_stmts(stmts: tuple[Stmt, ...], indent: int, out: list[str]) -> None:
    pad = "  " * indent
    for s in stmts:
        if isinstance(s, Assign):
            out.append(f"{pad}{s.dst} = {_fmt_expr(s.value)};")
        elif isinstance(s, GLoad):
            out.append(f"{pad}{s.dst} = {s.buf}[{_fmt_expr(s.index)}];  // global")
        elif isinstance(s, GStore):
            out.append(f"{pad}{s.buf}[{_fmt_expr(s.index)}] = {_fmt_expr(s.value)};  // global")
        elif isinstance(s, SLoad):
            out.append(f"{pad}{s.dst} = {s.arr}[{_fmt_expr(s.index)}];  // shared")
        elif isinstance(s, SStore):
            out.append(f"{pad}{s.arr}[{_fmt_expr(s.index)}] = {_fmt_expr(s.value)};  // shared")
        elif isinstance(s, If):
            out.append(f"{pad}if ({_fmt_expr(s.cond)}) {{")
            _dump_stmts(s.then, indent + 1, out)
            if s.orelse:
                out.append(f"{pad}}} else {{")
                _dump_stmts(s.orelse, indent + 1, out)
            out.append(f"{pad}}}")
        elif isinstance(s, While):
            out.append(f"{pad}while ({_fmt_expr(s.cond)}) {{")
            _dump_stmts(s.body, indent + 1, out)
            out.append(f"{pad}}}")
        elif isinstance(s, UniformWhile):
            out.append(f"{pad}while-any ({_fmt_expr(s.cond)}) {{")
            _dump_stmts(s.body, indent + 1, out)
            out.append(f"{pad}}}")
        elif isinstance(s, Sync):
            out.append(f"{pad}__syncthreads();")
        elif isinstance(s, Comment):
            out.append(f"{pad}// {s.text}")
        elif isinstance(s, AtomicUpdate):
            out.append(
                f"{pad}atomic {s.buf}[{_fmt_expr(s.index)}] "
                f"{s.op}= {_fmt_expr(s.value)};"
            )
        elif isinstance(s, ShflDown):
            out.append(f"{pad}{s.dst} = __shfl_down({s.src}, {s.delta});")
        else:
            raise TypeError(f"unknown stmt {s!r}")


def dump(kernel: Kernel) -> str:
    """Render a kernel as pseudo-CUDA text."""
    out = [f"__global__ void {kernel.name}"
           f"({', '.join(kernel.params)}) // buffers: {', '.join(kernel.buffers)}"]
    for sa in kernel.shared:
        out.append(f"  __shared__ {sa.dtype.ctype} {sa.name}[{sa.size}];")
    if kernel.note:
        out.append(f"  // {kernel.note}")
    out.append("{")
    _dump_stmts(kernel.body, 1, out)
    out.append("}")
    return "\n".join(out)
