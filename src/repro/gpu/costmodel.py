"""Analytic timing model: kernel execution counters → modeled time.

The contract (also stated in DESIGN.md): for one kernel launch,

* compute cost  = ``warp_inst_slots × issue_cycles``
* global memory = ``global_transactions × global_segment_cycles``, bounded
  below by the DRAM bandwidth (``global_bytes / dram_bandwidth``)
* shared memory = ``shared_accesses × shared_access_cycles`` (conflict
  serialization is already folded into the access count)
* barriers      = ``barriers × sync_cycles``

These per-block-aggregate cycles are divided by the number of concurrently
resident blocks (occupancy from threads/block and shared-memory footprint,
over the *usable* SMs — the paper assumes 12 of the K20c's 13), modeling
wave-style block scheduling, then converted to microseconds at the device
clock and topped with the fixed kernel-launch overhead.

Host↔device transfers are charged at PCIe bandwidth plus a fixed latency.

Absolute numbers are a model; the reproduction targets are the *ratios*
between strategies, which are driven by the counters (transactions,
conflicts, barrier counts, extra kernel launches) the strategies differ in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.device import DeviceProperties
from repro.gpu.events import KernelStats

__all__ = ["CostModel", "LAUNCH_SID", "TimeBreakdown"]

#: pseudo-statement id carrying the fixed kernel-launch overhead in
#: per-statement time apportionment (no real statement has sid < 0)
LAUNCH_SID = -1


@dataclass
class TimeBreakdown:
    """Modeled time of one launch, split by component (microseconds)."""

    launch_us: float = 0.0
    compute_us: float = 0.0
    global_us: float = 0.0
    shared_us: float = 0.0
    sync_us: float = 0.0
    bandwidth_floor_us: float = 0.0
    concurrency: int = 1

    @property
    def total_us(self) -> float:
        busy = self.compute_us + self.global_us + self.shared_us + self.sync_us
        return self.launch_us + max(busy, self.bandwidth_floor_us)


@dataclass
class CostModel:
    """Converts :class:`KernelStats` into modeled microseconds."""

    device: DeviceProperties

    def kernel_time(self, stats: KernelStats) -> TimeBreakdown:
        d = self.device
        conc = min(
            max(1, stats.blocks),
            d.concurrent_blocks(max(1, stats.threads_per_block),
                                stats.shared_bytes),
        )
        cycles_to_us = 1.0 / (d.clock_ghz * 1000.0)

        def us(cycles: float) -> float:
            return cycles / conc * cycles_to_us

        bw_bytes_per_us = d.dram_bandwidth_gbps * 1000.0  # GB/s == bytes/ns
        return TimeBreakdown(
            launch_us=d.kernel_launch_us,
            compute_us=us(stats.warp_inst_slots * d.issue_cycles),
            global_us=us(stats.global_transactions * d.global_segment_cycles
                         + stats.l2_transactions * d.l2_segment_cycles),
            shared_us=us(stats.shared_accesses * d.shared_access_cycles),
            sync_us=us(stats.barriers * d.sync_cycles),
            bandwidth_floor_us=stats.dram_bytes / bw_bytes_per_us,
            concurrency=conc,
        )

    def stmt_times(self, stats: KernelStats) -> dict[int, float]:
        """Apportion :meth:`kernel_time` across statements (sid → µs).

        Each attribution row is charged the same per-unit cycle costs the
        kernel-level model uses (issue, global/L2 segments, shared
        accesses, barrier waits); because the per-column row sums equal
        the kernel counters exactly, the rows' busy cycles sum to the
        kernel's.  The busy-or-bandwidth-bound portion of the total
        (``total_us - launch_us`` — which silently absorbs the DRAM
        bandwidth floor when it binds) is then split in proportion to
        each row's cycles, the fixed launch overhead becomes a pseudo-row
        under :data:`LAUNCH_SID`, and the float residual is folded into
        the largest row, so the returned values sum to
        ``kernel_time(stats).total_us`` to within an ulp.

        Requires ``stats.attribution`` (run with ``attribution=True``).
        """
        if stats.attribution is None:
            raise ValueError("stats has no attribution table; run the "
                             "kernel with attribution=True")
        d = self.device
        tb = self.kernel_time(stats)
        cycles = {
            sid: (r.warp_slots * d.issue_cycles
                  + r.global_transactions * d.global_segment_cycles
                  + r.l2_transactions * d.l2_segment_cycles
                  + r.shared_accesses * d.shared_access_cycles
                  + r.barrier_arrivals * d.sync_cycles)
            for sid, r in sorted(stats.attribution.rows.items())
        }
        out: dict[int, float] = {LAUNCH_SID: tb.launch_us}
        busy = sum(cycles.values())
        if busy > 0:
            scale = (tb.total_us - tb.launch_us) / busy
            for sid, c in cycles.items():
                out[sid] = c * scale
        residual = tb.total_us - sum(out.values())
        out[max(out, key=out.get)] += residual
        return out

    def transfer_time(self, nbytes: int) -> float:
        """Modeled host↔device copy time in microseconds."""
        d = self.device
        return d.pcie_latency_us + nbytes / (d.pcie_bandwidth_gbps * 1000.0)


@dataclass
class TimingLedger:
    """Accumulates modeled time across the kernels/transfers of one run.

    Programs append entries as they execute; reports and benchmarks read the
    totals.  Times are microseconds.
    """

    entries: list[tuple[str, float]] = field(default_factory=list)

    def add(self, label: str, us: float) -> None:
        self.entries.append((label, float(us)))

    @property
    def total_us(self) -> float:
        return sum(t for _, t in self.entries)

    @property
    def total_ms(self) -> float:
        return self.total_us / 1000.0

    def by_label(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for label, t in self.entries:
            out[label] = out.get(label, 0.0) + t
        return out

    def format_report(self) -> str:
        """Aligned per-label table: count, total, and share of each label.

        Labels repeat across iterative launches (``kernel:acc_region_main``
        once per iteration), so rows aggregate by label and keep the count.
        Rows are sorted most-expensive first, ties broken by label, so the
        report is stable across dict insertion order.  Used by the
        profiler's text output (``repro.obs.report``).
        """
        totals = self.by_label()
        counts: dict[str, int] = {}
        for label, _ in self.entries:
            counts[label] = counts.get(label, 0) + 1
        grand = self.total_us
        lines = []
        for label, t in sorted(totals.items(),
                               key=lambda kv: (-kv[1], kv[0])):
            share = f"{100.0 * t / grand:5.1f}%" if grand > 0 else "    -"
            lines.append(f"  {label:<40s} x{counts[label]:<5d}"
                         f"{t:12.2f} us {share}")
        lines.append(f"  {'TOTAL':<46s}{grand:12.2f} us")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format_report()
