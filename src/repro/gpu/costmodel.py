"""Analytic timing model: kernel execution counters → modeled time.

The contract (also stated in DESIGN.md): for one kernel launch,

* compute cost  = ``warp_inst_slots × issue_cycles``
* global memory = ``global_transactions × global_segment_cycles``, bounded
  below by the DRAM bandwidth (``global_bytes / dram_bandwidth``)
* shared memory = ``shared_accesses × shared_access_cycles`` (conflict
  serialization is already folded into the access count)
* barriers      = ``barriers × sync_cycles``

These per-block-aggregate cycles are divided by the number of concurrently
resident blocks (occupancy from threads/block and shared-memory footprint,
over the *usable* SMs — the paper assumes 12 of the K20c's 13), modeling
wave-style block scheduling, then converted to microseconds at the device
clock and topped with the fixed kernel-launch overhead.

Host↔device transfers are charged at PCIe bandwidth plus a fixed latency.

Absolute numbers are a model; the reproduction targets are the *ratios*
between strategies, which are driven by the counters (transactions,
conflicts, barrier counts, extra kernel launches) the strategies differ in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.device import DeviceProperties
from repro.gpu.events import KernelStats

__all__ = ["CostModel", "LAUNCH_SID", "TimeBreakdown",
           "estimate_reduction_strategies"]

#: pseudo-statement id carrying the fixed kernel-launch overhead in
#: per-statement time apportionment (no real statement has sid < 0)
LAUNCH_SID = -1


@dataclass
class TimeBreakdown:
    """Modeled time of one launch, split by component (microseconds)."""

    launch_us: float = 0.0
    compute_us: float = 0.0
    global_us: float = 0.0
    shared_us: float = 0.0
    sync_us: float = 0.0
    bandwidth_floor_us: float = 0.0
    concurrency: int = 1

    @property
    def total_us(self) -> float:
        busy = self.compute_us + self.global_us + self.shared_us + self.sync_us
        return self.launch_us + max(busy, self.bandwidth_floor_us)


@dataclass
class CostModel:
    """Converts :class:`KernelStats` into modeled microseconds."""

    device: DeviceProperties

    def kernel_time(self, stats: KernelStats) -> TimeBreakdown:
        d = self.device
        conc = min(
            max(1, stats.blocks),
            d.concurrent_blocks(max(1, stats.threads_per_block),
                                stats.shared_bytes),
        )
        cycles_to_us = 1.0 / (d.clock_ghz * 1000.0)

        def us(cycles: float) -> float:
            return cycles / conc * cycles_to_us

        bw_bytes_per_us = d.dram_bandwidth_gbps * 1000.0  # GB/s == bytes/ns
        return TimeBreakdown(
            launch_us=d.kernel_launch_us,
            compute_us=us(stats.warp_inst_slots * d.issue_cycles),
            global_us=us(stats.global_transactions * d.global_segment_cycles
                         + stats.l2_transactions * d.l2_segment_cycles),
            shared_us=us(stats.shared_accesses * d.shared_access_cycles),
            sync_us=us(stats.barriers * d.sync_cycles),
            bandwidth_floor_us=stats.dram_bytes / bw_bytes_per_us,
            concurrency=conc,
        )

    def stmt_times(self, stats: KernelStats) -> dict[int, float]:
        """Apportion :meth:`kernel_time` across statements (sid → µs).

        Each attribution row is charged the same per-unit cycle costs the
        kernel-level model uses (issue, global/L2 segments, shared
        accesses, barrier waits); because the per-column row sums equal
        the kernel counters exactly, the rows' busy cycles sum to the
        kernel's.  The busy-or-bandwidth-bound portion of the total
        (``total_us - launch_us`` — which silently absorbs the DRAM
        bandwidth floor when it binds) is then split in proportion to
        each row's cycles, the fixed launch overhead becomes a pseudo-row
        under :data:`LAUNCH_SID`, and the float residual is folded into
        the largest row, so the returned values sum to
        ``kernel_time(stats).total_us`` to within an ulp.

        Requires ``stats.attribution`` (run with ``attribution=True``).
        """
        if stats.attribution is None:
            raise ValueError("stats has no attribution table; run the "
                             "kernel with attribution=True")
        d = self.device
        tb = self.kernel_time(stats)
        cycles = {
            sid: (r.warp_slots * d.issue_cycles
                  + r.global_transactions * d.global_segment_cycles
                  + r.l2_transactions * d.l2_segment_cycles
                  + r.shared_accesses * d.shared_access_cycles
                  + r.barrier_arrivals * d.sync_cycles)
            for sid, r in sorted(stats.attribution.rows.items())
        }
        out: dict[int, float] = {LAUNCH_SID: tb.launch_us}
        busy = sum(cycles.values())
        if busy > 0:
            scale = (tb.total_us - tb.launch_us) / busy
            for sid, c in cycles.items():
                out[sid] = c * scale
        residual = tb.total_us - sum(out.values())
        out[max(out, key=out.get)] += residual
        return out

    def transfer_time(self, nbytes: int) -> float:
        """Modeled host↔device copy time in microseconds."""
        d = self.device
        return d.pcie_latency_us + nbytes / (d.pcie_bandwidth_gbps * 1000.0)


def _logstep_profile(width: int, elide_warp_sync: bool,
                     warp_size: int = 32) -> tuple[int, int]:
    """(combining steps, barriers) of one log-step tree over ``width``,
    mirroring the sync-emission rules of ``codegen.reduction.logstep``."""
    if width <= 1:
        return 0, 0
    p = 1
    while p * 2 <= width:
        p *= 2
    rem = width - p
    steps, syncs = 0, 1  # the leading barrier ordering the staging stores
    if rem:
        steps += 1
        if not elide_warp_sync or max(rem, p // 2) > warp_size:
            syncs += 1
    s = p // 2
    while s >= 1:
        steps += 1
        if s > 1 and (not elide_warp_sync or s > warp_size):
            syncs += 1
        s //= 2
    return steps, syncs


def estimate_reduction_strategies(
    device: DeviceProperties,
    geom,
    *,
    dtype,
    partials: int = 0,
    vector_candidates: tuple[str, ...] = (),
    gang_candidates: tuple[str, ...] = (),
    finish_block_size: int = 256,
    elide_warp_sync: bool = True,
    cascade: bool = False,
) -> dict[str, dict[str, float]]:
    """Analytically price reduction-strategy candidates (µs per launch grid).

    The autotune pass calls this per reduction variable with the candidate
    values that are *legal* for it (gating — exact-combine operators,
    power-of-two widths, atomic-capable operators — is the caller's job).
    Candidates are priced by synthesizing coarse :class:`KernelStats` for
    just the reduction portion of the kernel and running them through the
    same :class:`CostModel` the simulator charges, so the comparison uses
    the device's actual cycle ratios rather than a second ad-hoc model.
    Absolute values are rough; only the per-field ordering is consumed.

    Returns ``{field: {candidate: modeled_us}}`` for each field with ≥1
    candidate: ``vector_strategy`` (``logstep`` | ``shuffle``) and
    ``gang_partial_style`` (``buffer`` | ``atomic``, where ``buffer``
    includes the extra finish-kernel launch over ``partials`` staged
    values).

    ``cascade=True`` adds ``cascade_fusion`` with ``fused`` vs
    ``unfused`` prices for a reduce→consume handoff across two kernel
    stages: ``unfused`` is the separate finish launch plus the host
    reading the result between the stage launches; ``fused`` is every
    consumer-stage block redundantly replaying the finish combine tree
    (no launch, no intermediate read — the result read moves after the
    last stage, so it still appears once in both prices).
    """
    cm = CostModel(device)
    blocks = geom.num_gangs
    tpb = geom.threads_per_block
    warps = max(1, -(-tpb // device.warp_size))
    itemsize = dtype.itemsize
    out: dict[str, dict[str, float]] = {}

    if vector_candidates:
        width = geom.vector_length if geom.vector_length > 1 else tpb
        est: dict[str, float] = {}
        for cand in vector_candidates:
            if cand == "logstep":
                steps, syncs = _logstep_profile(width, elide_warp_sync,
                                                device.warp_size)
                stats = KernelStats(
                    blocks=blocks, threads_per_block=tpb,
                    shared_bytes=tpb * itemsize,
                    # staging store + 3 accesses per combining step, per warp
                    shared_accesses=(1 + 3 * steps) * warps,
                    warp_inst_slots=2 * steps * warps,
                    barriers=syncs)
            elif cand == "shuffle":
                lanes = min(width, device.warp_size)
                shfl_steps = max(1, lanes.bit_length() - 1)
                nw = max(1, width // device.warp_size)
                cross = nw > 1
                stats = KernelStats(
                    blocks=blocks, threads_per_block=tpb,
                    shared_bytes=(nw * itemsize if cross else 0),
                    # one shfl + one combine slot per step per warp, plus
                    # the cross-warp shared-memory handoff when nw > 1
                    warp_inst_slots=2 * shfl_steps * warps * (2 if cross
                                                              else 1),
                    shared_accesses=(3 * warps if cross else 0),
                    barriers=(2 if cross else 0))
            else:  # pragma: no cover - caller passes known candidates
                continue
            est[cand] = cm.kernel_time(stats).total_us
        out["vector_strategy"] = est

    if gang_candidates:
        est = {}
        fbs = finish_block_size
        fwarps = max(1, -(-fbs // device.warp_size))
        n = max(1, partials)
        for cand in gang_candidates:
            if cand == "buffer":
                # one extra launch: strided accumulation over the partial
                # buffer, then a log-step tree over the staged block
                steps, syncs = _logstep_profile(fbs, elide_warp_sync,
                                                device.warp_size)
                rounds = -(-n // fbs)
                stats = KernelStats(
                    blocks=1, threads_per_block=fbs,
                    shared_bytes=fbs * itemsize,
                    global_transactions=rounds * fwarps,
                    global_bytes=n * itemsize,
                    dram_bytes=n * itemsize,
                    shared_accesses=(1 + 3 * steps) * fwarps,
                    warp_inst_slots=(3 * rounds + 2 * steps) * fwarps,
                    barriers=syncs)
                est[cand] = cm.kernel_time(stats).total_us
            elif cand == "atomic":
                # no extra launch; the device serializes one RMW round per
                # contending gang, so drop the launch term from the model
                stats = KernelStats(
                    blocks=1, threads_per_block=device.warp_size,
                    global_transactions=2 * blocks,
                    global_bytes=blocks * itemsize,
                    dram_bytes=blocks * itemsize,
                    warp_inst_slots=blocks)
                tb = cm.kernel_time(stats)
                est[cand] = tb.total_us - tb.launch_us
            else:  # pragma: no cover - caller passes known candidates
                continue
        out["gang_partial_style"] = est

    if cascade:
        fbs = finish_block_size
        fwarps = max(1, -(-fbs // device.warp_size))
        n = max(1, partials)
        steps, syncs = _logstep_profile(fbs, elide_warp_sync,
                                        device.warp_size)
        rounds = -(-n // fbs)
        # unfused: the dedicated finish launch (single block) + the host
        # reading the finished scalar before the next stage can launch
        fin = KernelStats(
            blocks=1, threads_per_block=fbs,
            shared_bytes=fbs * itemsize,
            global_transactions=rounds * fwarps,
            global_bytes=n * itemsize,
            dram_bytes=n * itemsize,
            shared_accesses=(1 + 3 * steps) * fwarps,
            warp_inst_slots=(3 * rounds + 2 * steps) * fwarps,
            barriers=syncs)
        unfused = (cm.kernel_time(fin).total_us
                   + cm.transfer_time(itemsize))
        # fused: the same combine tree replayed redundantly by every
        # consumer block at the main geometry.  The partial buffer is
        # re-read per block but stays hot in L2 after the first wave,
        # so DRAM is charged once; no launch overhead, and the result
        # read happens after the final stage either way.
        rep = KernelStats(
            blocks=blocks, threads_per_block=tpb,
            shared_bytes=fbs * itemsize,
            global_transactions=rounds * fwarps * blocks,
            global_bytes=n * itemsize * blocks,
            dram_bytes=n * itemsize,
            shared_accesses=(1 + 3 * steps) * fwarps * blocks,
            warp_inst_slots=(3 * rounds + 2 * steps) * fwarps * blocks,
            barriers=(syncs + 1) * blocks)
        tb = cm.kernel_time(rep)
        out["cascade_fusion"] = {"unfused": unfused,
                                 "fused": tb.total_us - tb.launch_us}

    return out


@dataclass
class TimingLedger:
    """Accumulates modeled time across the kernels/transfers of one run.

    Programs append entries as they execute; reports and benchmarks read the
    totals.  Times are microseconds.
    """

    entries: list[tuple[str, float]] = field(default_factory=list)

    def add(self, label: str, us: float) -> None:
        self.entries.append((label, float(us)))

    @property
    def total_us(self) -> float:
        return sum(t for _, t in self.entries)

    @property
    def total_ms(self) -> float:
        return self.total_us / 1000.0

    def by_label(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for label, t in self.entries:
            out[label] = out.get(label, 0.0) + t
        return out

    def format_report(self) -> str:
        """Aligned per-label table: count, total, and share of each label.

        Labels repeat across iterative launches (``kernel:acc_region_main``
        once per iteration), so rows aggregate by label and keep the count.
        Rows are sorted most-expensive first, ties broken by label, so the
        report is stable across dict insertion order.  Used by the
        profiler's text output (``repro.obs.report``).
        """
        totals = self.by_label()
        counts: dict[str, int] = {}
        for label, _ in self.entries:
            counts[label] = counts.get(label, 0) + 1
        grand = self.total_us
        lines = []
        for label, t in sorted(totals.items(),
                               key=lambda kv: (-kv[1], kv[0])):
            share = f"{100.0 * t / grand:5.1f}%" if grand > 0 else "    -"
            lines.append(f"  {label:<40s} x{counts[label]:<5d}"
                         f"{t:12.2f} us {share}")
        lines.append(f"  {'TOTAL':<46s}{grand:12.2f} us")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format_report()
