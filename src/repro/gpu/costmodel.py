"""Analytic timing model: kernel execution counters → modeled time.

The contract (also stated in DESIGN.md): for one kernel launch,

* compute cost  = ``warp_inst_slots × issue_cycles``
* global memory = ``global_transactions × global_segment_cycles``, bounded
  below by the DRAM bandwidth (``global_bytes / dram_bandwidth``)
* shared memory = ``shared_accesses × shared_access_cycles`` (conflict
  serialization is already folded into the access count)
* barriers      = ``barriers × sync_cycles``

These per-block-aggregate cycles are divided by the number of concurrently
resident blocks (occupancy from threads/block and shared-memory footprint,
over the *usable* SMs — the paper assumes 12 of the K20c's 13), modeling
wave-style block scheduling, then converted to microseconds at the device
clock and topped with the fixed kernel-launch overhead.

Host↔device transfers are charged at PCIe bandwidth plus a fixed latency.

Absolute numbers are a model; the reproduction targets are the *ratios*
between strategies, which are driven by the counters (transactions,
conflicts, barrier counts, extra kernel launches) the strategies differ in.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.gpu.device import DeviceProperties
from repro.gpu.events import KernelStats

__all__ = ["CostModel", "TimeBreakdown"]


@dataclass
class TimeBreakdown:
    """Modeled time of one launch, split by component (microseconds)."""

    launch_us: float = 0.0
    compute_us: float = 0.0
    global_us: float = 0.0
    shared_us: float = 0.0
    sync_us: float = 0.0
    bandwidth_floor_us: float = 0.0
    concurrency: int = 1

    @property
    def total_us(self) -> float:
        busy = self.compute_us + self.global_us + self.shared_us + self.sync_us
        return self.launch_us + max(busy, self.bandwidth_floor_us)


@dataclass
class CostModel:
    """Converts :class:`KernelStats` into modeled microseconds."""

    device: DeviceProperties

    def kernel_time(self, stats: KernelStats) -> TimeBreakdown:
        d = self.device
        conc = min(
            max(1, stats.blocks),
            d.concurrent_blocks(max(1, stats.threads_per_block),
                                stats.shared_bytes),
        )
        cycles_to_us = 1.0 / (d.clock_ghz * 1000.0)

        def us(cycles: float) -> float:
            return cycles / conc * cycles_to_us

        bw_bytes_per_us = d.dram_bandwidth_gbps * 1000.0  # GB/s == bytes/ns
        return TimeBreakdown(
            launch_us=d.kernel_launch_us,
            compute_us=us(stats.warp_inst_slots * d.issue_cycles),
            global_us=us(stats.global_transactions * d.global_segment_cycles
                         + stats.l2_transactions * d.l2_segment_cycles),
            shared_us=us(stats.shared_accesses * d.shared_access_cycles),
            sync_us=us(stats.barriers * d.sync_cycles),
            bandwidth_floor_us=stats.dram_bytes / bw_bytes_per_us,
            concurrency=conc,
        )

    def transfer_time(self, nbytes: int) -> float:
        """Modeled host↔device copy time in microseconds."""
        d = self.device
        return d.pcie_latency_us + nbytes / (d.pcie_bandwidth_gbps * 1000.0)


@dataclass
class TimingLedger:
    """Accumulates modeled time across the kernels/transfers of one run.

    Programs append entries as they execute; reports and benchmarks read the
    totals.  Times are microseconds.
    """

    entries: list[tuple[str, float]] = field(default_factory=list)

    def add(self, label: str, us: float) -> None:
        self.entries.append((label, float(us)))

    @property
    def total_us(self) -> float:
        return sum(t for _, t in self.entries)

    @property
    def total_ms(self) -> float:
        return self.total_us / 1000.0

    def by_label(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for label, t in self.entries:
            out[label] = out.get(label, 0.0) + t
        return out

    def format_report(self) -> str:
        """Aligned per-label table: count, total, and share of each label.

        Labels repeat across iterative launches (``kernel:acc_region_main``
        once per iteration), so rows aggregate by label and keep the count.
        Used by the profiler's text output (``repro.obs.report``).
        """
        totals = self.by_label()
        counts: dict[str, int] = {}
        for label, _ in self.entries:
            counts[label] = counts.get(label, 0) + 1
        grand = self.total_us
        lines = []
        for label, t in totals.items():
            share = f"{100.0 * t / grand:5.1f}%" if grand > 0 else "    -"
            lines.append(f"  {label:<40s} x{counts[label]:<5d}"
                         f"{t:12.2f} us {share}")
        lines.append(f"  {'TOTAL':<46s}{grand:12.2f} us")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.format_report()
