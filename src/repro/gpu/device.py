"""Device description: architectural limits and cost-model constants.

The default instance, :data:`K20C`, is a Kepler K20c-class device — the GPU
used in the paper's evaluation (§4): 13 SMs (the paper notes one is likely
disabled, so 12 are assumed usable and the paper sizes its grid as
12 × 16 = 192 gangs), warps of 32 threads, at most 1024 threads and 48 KiB of
shared memory per block.

Timing constants are *model* parameters, not measurements; see DESIGN.md for
the cost-model contract.  Tests pin these values, and experiments may
override any of them by constructing a custom :class:`DeviceProperties`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ResourceError

__all__ = ["DeviceProperties", "K20C"]


@dataclass(frozen=True)
class DeviceProperties:
    """Architectural limits and analytic-timing constants of a device."""

    name: str = "Simulated Kepler K20c"

    # --- architecture -----------------------------------------------------
    warp_size: int = 32
    max_threads_per_block: int = 1024
    max_block_dim_x: int = 1024
    max_block_dim_y: int = 1024
    shared_mem_per_block: int = 48 * 1024  # bytes
    shared_mem_banks: int = 32
    shared_mem_bank_width: int = 4  # bytes
    num_sms: int = 13
    usable_sms: int = 12  # paper §4: one SM likely disabled
    max_blocks_per_sm: int = 16
    max_warps_per_sm: int = 64
    global_mem_bytes: int = 5 * 1024**3  # 5 GB on the K20c
    transaction_bytes: int = 128  # global-memory coalescing segment

    # --- cost model (cycles unless noted) ----------------------------------
    clock_ghz: float = 0.706
    issue_cycles: float = 1.0  # per warp-instruction slot
    global_segment_cycles: float = 24.0  # throughput cost per 128B transaction
    l2_segment_cycles: float = 6.0  # per warp request served by the L2
    shared_access_cycles: float = 2.0  # per (conflict-serialized) warp access
    sync_cycles: float = 32.0  # per __syncthreads per resident warp set
    dram_bandwidth_gbps: float = 208.0  # device-memory bandwidth bound
    kernel_launch_us: float = 5.0  # fixed host-side launch overhead
    pcie_bandwidth_gbps: float = 6.0  # host<->device transfer bandwidth
    pcie_latency_us: float = 10.0  # fixed per-transfer latency

    def validate_block(self, bdx: int, bdy: int, shared_bytes: int = 0) -> None:
        """Reject launches that exceed device limits.

        Raises :class:`~repro.errors.ResourceError`, mirroring a CUDA launch
        failure.
        """
        if bdx < 1 or bdy < 1:
            raise ResourceError(f"block dimensions must be >= 1, got ({bdx}, {bdy})")
        if bdx > self.max_block_dim_x or bdy > self.max_block_dim_y:
            raise ResourceError(
                f"block dim ({bdx}, {bdy}) exceeds per-dimension limits "
                f"({self.max_block_dim_x}, {self.max_block_dim_y})"
            )
        if bdx * bdy > self.max_threads_per_block:
            raise ResourceError(
                f"{bdx * bdy} threads per block exceeds the limit of "
                f"{self.max_threads_per_block}"
            )
        if shared_bytes > self.shared_mem_per_block:
            raise ResourceError(
                f"{shared_bytes} bytes of shared memory exceeds the per-block "
                f"limit of {self.shared_mem_per_block}"
            )

    def concurrent_blocks(self, threads_per_block: int, shared_bytes: int) -> int:
        """How many blocks the device can have resident at once.

        Occupancy is limited per SM by the block count cap, the warp count
        cap, and the shared-memory capacity; the device total multiplies the
        per-SM figure by the number of *usable* SMs.
        """
        warps = max(1, -(-threads_per_block // self.warp_size))  # ceil div
        per_sm = min(
            self.max_blocks_per_sm,
            self.max_warps_per_sm // warps if warps else self.max_blocks_per_sm,
        )
        if shared_bytes > 0:
            per_sm = min(per_sm, self.shared_mem_per_block // shared_bytes)
        per_sm = max(1, per_sm)
        return per_sm * self.usable_sms

    def with_overrides(self, **kwargs) -> "DeviceProperties":
        """A copy of this device with some constants replaced."""
        return replace(self, **kwargs)


#: The default simulated device, matching the paper's evaluation platform.
K20C = DeviceProperties()
