"""Event accounting for simulated kernel execution.

The executor does not keep a per-access trace (that would be enormous);
instead it accumulates the aggregate counters the cost model consumes, plus a
small optional structured trace for debugging/teaching (enabled per launch).

Counter semantics:

``warp_inst_slots``
    Number of (warp, statement) execution slots.  A statement executed by a
    block with 4 active warps adds 4.  Divergent ``if`` bodies execute both
    sides, so divergence shows up here automatically.
``global_transactions`` / ``global_bytes``
    128-byte segment transactions per warp access after coalescing, and the
    useful bytes moved (for the bandwidth bound).
``shared_accesses``
    Conflict-serialized shared-memory warp accesses: an access with bank
    conflict degree *d* counts *d*.
``barriers``
    ``__syncthreads`` executions (per block).
``divergent_branches``
    Branches where at least one warp had threads on both sides.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["KernelStats", "TraceEvent"]


@dataclass
class TraceEvent:
    """One structured trace record (only collected when tracing is on)."""

    kind: str  # "gload", "gstore", "sload", "sstore", "sync", "branch"
    block: int
    detail: str


@dataclass
class KernelStats:
    """Aggregate execution counters for one kernel launch."""

    blocks: int = 0
    threads_per_block: int = 0
    shared_bytes: int = 0

    warp_inst_slots: int = 0
    global_transactions: int = 0  # DRAM segment fetches (distinct per access)
    l2_transactions: int = 0  # warp requests served by the L2 (same segment
    #                           requested by other warps in the same access)
    global_bytes: int = 0  # useful bytes moved (active lanes x itemsize)
    dram_bytes: int = 0  # segment bytes fetched from DRAM (>= useful for
    #                      uncoalesced access; < useful for broadcasts)
    shared_accesses: int = 0
    bank_conflict_extra: int = 0  # serialized accesses beyond the conflict-free 1/warp
    barriers: int = 0
    divergent_branches: int = 0

    trace: list[TraceEvent] = field(default_factory=list)

    def merge(self, other: "KernelStats") -> None:
        """Fold another stats object (e.g. per-block counters) into this one."""
        self.warp_inst_slots += other.warp_inst_slots
        self.global_transactions += other.global_transactions
        self.l2_transactions += other.l2_transactions
        self.global_bytes += other.global_bytes
        self.dram_bytes += other.dram_bytes
        self.shared_accesses += other.shared_accesses
        self.bank_conflict_extra += other.bank_conflict_extra
        self.barriers += other.barriers
        self.divergent_branches += other.divergent_branches
        self.trace.extend(other.trace)

    def summary(self) -> str:
        """Human-readable one-line summary (used by the inspect example)."""
        return (
            f"blocks={self.blocks} tpb={self.threads_per_block} "
            f"inst={self.warp_inst_slots} gtx={self.global_transactions} "
            f"l2={self.l2_transactions} gbytes={self.global_bytes} "
            f"dram={self.dram_bytes} smem={self.shared_accesses} "
            f"(+{self.bank_conflict_extra} conflict) sync={self.barriers} "
            f"div={self.divergent_branches}"
        )
