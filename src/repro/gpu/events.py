"""Event accounting for simulated kernel execution.

The executor does not keep a per-access trace (that would be enormous);
instead it accumulates the aggregate counters the cost model consumes, plus a
small optional structured trace for debugging/teaching (enabled per launch).

Counter semantics:

``warp_inst_slots``
    Number of (warp, statement) execution slots.  A statement executed by a
    block with 4 active warps adds 4.  Divergent ``if`` bodies execute both
    sides, so divergence shows up here automatically.
``global_transactions`` / ``global_bytes``
    128-byte segment transactions per warp access after coalescing, and the
    useful bytes moved (for the bandwidth bound).
``shared_accesses``
    Conflict-serialized shared-memory warp accesses: an access with bank
    conflict degree *d* counts *d*.
``barriers``
    ``__syncthreads`` executions (per block).
``divergent_branches``
    Branches where at least one warp had threads on both sides.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["AttributionTable", "KernelStats", "StmtCounters", "TraceEvent"]


@dataclass
class TraceEvent:
    """One structured trace record (only collected when tracing is on)."""

    kind: str  # "gload", "gstore", "sload", "sstore", "sync", "branch"
    block: int
    detail: str


@dataclass
class StmtCounters:
    """Per-statement accounting (one row of an :class:`AttributionTable`).

    Filled by both executors under the opt-in ``attribution`` launch knob;
    the batched and reference paths must produce bit-identical rows (pinned
    by the differential test suite).  ``warp_slots`` mirrors the statement's
    contribution to ``KernelStats.warp_inst_slots`` exactly, so summing a
    column over all rows reproduces the kernel-level counter.
    """

    execs: int = 0  # per-block executions (a block entering the stmt once)
    lanes: int = 0  # active thread-lanes summed over executions
    warp_slots: int = 0  # (warp, statement) issue slots
    global_transactions: int = 0  # DRAM segment fetches
    l2_transactions: int = 0  # warp requests served by the L2
    global_bytes: int = 0
    dram_bytes: int = 0
    shared_accesses: int = 0  # conflict-serialized shared warp accesses
    bank_conflict_extra: int = 0
    divergence_splits: int = 0  # warps with lanes on both sides of a branch
    barrier_arrivals: int = 0  # per-block __syncthreads arrivals
    barrier_wait_slots: int = 0  # warp slots spent at the barrier
    atomic_rounds: int = 0  # serialized atomic transactions
    fault_events: int = 0  # injected faults landing on this statement

    def merge(self, other: "StmtCounters") -> None:
        for f in fields(StmtCounters):
            setattr(self, f.name,
                    getattr(self, f.name) + getattr(other, f.name))

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(StmtCounters)}


class AttributionTable:
    """sid → :class:`StmtCounters` accounting table for one launch.

    Only allocated when a launch opts in (``attribution=True``); the
    executors' closures check for ``None`` at run time so the off path
    allocates nothing.
    """

    __slots__ = ("rows",)

    def __init__(self):
        self.rows: dict[int, StmtCounters] = {}

    def row(self, sid: int) -> StmtCounters:
        r = self.rows.get(sid)
        if r is None:
            r = self.rows[sid] = StmtCounters()
        return r

    def merge(self, other: "AttributionTable") -> None:
        for sid, r in other.rows.items():
            self.row(sid).merge(r)

    def as_dict(self) -> dict[int, dict]:
        return {sid: self.rows[sid].as_dict() for sid in sorted(self.rows)}

    def __eq__(self, other) -> bool:
        if not isinstance(other, AttributionTable):
            return NotImplemented
        return self.as_dict() == other.as_dict()


@dataclass
class KernelStats:
    """Aggregate execution counters for one kernel launch."""

    blocks: int = 0
    threads_per_block: int = 0
    shared_bytes: int = 0

    warp_inst_slots: int = 0
    global_transactions: int = 0  # DRAM segment fetches (distinct per access)
    l2_transactions: int = 0  # warp requests served by the L2 (same segment
    #                           requested by other warps in the same access)
    global_bytes: int = 0  # useful bytes moved (active lanes x itemsize)
    dram_bytes: int = 0  # segment bytes fetched from DRAM (>= useful for
    #                      uncoalesced access; < useful for broadcasts)
    shared_accesses: int = 0
    bank_conflict_extra: int = 0  # serialized accesses beyond the conflict-free 1/warp
    barriers: int = 0
    divergent_branches: int = 0

    trace: list[TraceEvent] = field(default_factory=list)
    #: opt-in per-statement accounting (``attribution=True`` launches only)
    attribution: AttributionTable | None = None

    #: launch-configuration fields: describe the launch rather than count
    #: events, so :meth:`merge` must not sum them
    CONFIG_FIELDS = frozenset({"blocks", "threads_per_block", "shared_bytes"})

    def merge(self, other: "KernelStats") -> None:
        """Fold another stats object (e.g. per-block counters) into this one.

        Counter fields are discovered by reflection so a newly added counter
        cannot silently be dropped; only the launch-configuration fields and
        the structured ``trace``/``attribution`` extras are special-cased.
        """
        for f in fields(KernelStats):
            if f.name in self.CONFIG_FIELDS or f.name in ("trace",
                                                          "attribution"):
                continue
            setattr(self, f.name,
                    getattr(self, f.name) + getattr(other, f.name))
        self.trace.extend(other.trace)
        if other.attribution is not None:
            if self.attribution is None:
                self.attribution = AttributionTable()
            self.attribution.merge(other.attribution)

    def summary(self) -> str:
        """Human-readable one-line summary (used by the inspect example)."""
        return (
            f"blocks={self.blocks} tpb={self.threads_per_block} "
            f"sbytes={self.shared_bytes} "
            f"inst={self.warp_inst_slots} gtx={self.global_transactions} "
            f"l2={self.l2_transactions} gbytes={self.global_bytes} "
            f"dram={self.dram_bytes} smem={self.shared_accesses} "
            f"(+{self.bank_conflict_extra} conflict) sync={self.barriers} "
            f"div={self.divergent_branches}"
        )
