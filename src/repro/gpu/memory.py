"""Simulated device memories with traffic accounting.

``GlobalMemory`` holds named buffers laid out on a flat byte address space
(256-byte aligned, like ``cudaMalloc``), so coalescing is computed from real
byte addresses: each warp access is split into the set of 128-byte segments
it touches, and each segment is one transaction.  Fully coalesced accesses by
a 32-thread warp of 4-byte elements therefore cost 1 transaction; a strided
(blocking-scheduled) access costs up to 32 — this is the mechanism behind the
paper's preference for window-sliding scheduling (§3.1.3).

``SharedMemory`` models the 32-bank, 4-byte-word Kepler shared memory: a warp
access that maps *n* distinct words to the same bank serializes into *n*
accesses (same-word broadcast is free).  The transposed reduction layouts the
paper rejects (Fig. 6(b) / 8(b)) pay for themselves here.

Store semantics: when several active threads store to the same element in one
statement, the highest thread id wins, deterministically.  This makes
missing-privatization races (the modeled commercial-compiler defects) produce
stable wrong answers instead of flaky ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dtypes import DType
from repro.errors import OutOfBoundsError, ResourceError
from repro.gpu.device import DeviceProperties
from repro.gpu.events import KernelStats

__all__ = ["Buffer", "GlobalMemory", "SharedMemory"]

_ALIGN = 256


@dataclass
class Buffer:
    """A device global-memory buffer."""

    name: str
    dtype: DType
    size: int  # elements
    base: int  # byte address on the simulated device
    data: np.ndarray  # 1-D array of dtype.np, length == size

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize


class GlobalMemory:
    """Device global memory: a set of named buffers + traffic accounting."""

    def __init__(self, device: DeviceProperties):
        self.device = device
        self._buffers: dict[str, Buffer] = {}
        self._next_base = _ALIGN  # leave address 0 unused, like real allocators
        #: opt-in fault injector (repro.faults.FaultInjector); attached per
        #: launch by CompiledKernel.run — None means no fault work at all
        self.faults = None

    # -- allocation --------------------------------------------------------

    def alloc(self, name: str, size: int, dtype: DType,
              init: np.ndarray | None = None) -> Buffer:
        """Allocate a named buffer; optionally copy initial contents."""
        if name in self._buffers:
            raise ResourceError(f"buffer {name!r} already allocated")
        if size < 0:
            raise ResourceError(f"negative buffer size {size} for {name!r}")
        nbytes = size * dtype.itemsize
        used = sum(b.nbytes for b in self._buffers.values())
        if used + nbytes > self.device.global_mem_bytes:
            raise ResourceError(
                f"allocating {nbytes} bytes for {name!r} exceeds device memory "
                f"({used} bytes in use of {self.device.global_mem_bytes})"
            )
        data = np.zeros(size, dtype=dtype.np)
        if init is not None:
            flat = np.asarray(init, dtype=dtype.np).reshape(-1)
            if flat.size != size:
                raise ResourceError(
                    f"init for {name!r} has {flat.size} elements, expected {size}"
                )
            data[:] = flat
        buf = Buffer(name, dtype, size, self._next_base, data)
        self._next_base += (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
        self._buffers[name] = buf
        return buf

    def free(self, name: str) -> None:
        """Release a buffer (address space is not recycled; fine for runs)."""
        del self._buffers[name]

    def __contains__(self, name: str) -> bool:
        return name in self._buffers

    def __getitem__(self, name: str) -> Buffer:
        try:
            return self._buffers[name]
        except KeyError:
            raise OutOfBoundsError(f"no such buffer {name!r}") from None

    def buffers(self) -> list[Buffer]:
        return list(self._buffers.values())

    # -- access (called by the executor with per-thread index vectors) ------

    def load(self, name: str, idx: np.ndarray, mask: np.ndarray,
             warp_of: np.ndarray, stats: KernelStats,
             reuse: tuple | None = None) -> np.ndarray:
        """Gather ``buffer[idx]`` for active threads; count transactions.

        Returns a full-width vector; lanes with ``mask == False`` hold the
        buffer's zero value (they are never observed by correct kernels).
        ``reuse`` is an optional ``(cache_dict, slot)`` pair enabling the
        statement-level segment-reuse model (see ``_count_transactions``).
        """
        buf = self[name]
        act = idx[mask]
        self._check_bounds(buf, act)
        out = np.zeros(idx.shape, dtype=buf.dtype.np)
        if act.size:
            out[mask] = buf.data[act]
            self._count_transactions(buf, act, warp_of[mask], stats, reuse)
            if self.faults is not None:
                # transient read upset: corrupts the gathered register
                # vector only, never the buffer contents
                self.faults.on_gload(name, out, mask)
        return out

    def store(self, name: str, idx: np.ndarray, values: np.ndarray,
              mask: np.ndarray, warp_of: np.ndarray,
              stats: KernelStats, reuse: tuple | None = None) -> None:
        """Scatter ``buffer[idx] = values`` for active threads.

        Duplicate indices: highest thread id wins (NumPy fancy assignment
        applies positions in order and thread vectors are id-ordered).
        """
        buf = self[name]
        act = idx[mask]
        if not act.size:
            return
        self._check_bounds(buf, act)
        buf.data[act] = np.asarray(values, dtype=buf.dtype.np)[mask]
        self._count_transactions(buf, act, warp_of[mask], stats, reuse)

    def atomic_update(self, name: str, idx: np.ndarray, values: np.ndarray,
                      mask: np.ndarray, warp_of: np.ndarray,
                      stats: KernelStats, combine) -> None:
        """Read-modify-write where duplicate indices *combine* via ``combine``.

        ``combine`` is a NumPy ufunc (e.g. ``np.add``); ``ufunc.at`` gives the
        atomics semantics.  Each lane is charged a transaction (atomics do not
        coalesce on Kepler-class hardware).
        """
        buf = self[name]
        act = idx[mask]
        if not act.size:
            return
        self._check_bounds(buf, act)
        combine.at(buf.data, act, np.asarray(values, dtype=buf.dtype.np)[mask])
        stats.global_transactions += int(act.size)
        stats.global_bytes += int(act.size) * buf.dtype.itemsize * 2
        stats.dram_bytes += int(act.size) * buf.dtype.itemsize * 2

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _check_bounds(buf: Buffer, act: np.ndarray) -> None:
        if act.size and (act.min() < 0 or act.max() >= buf.size):
            bad = act[(act < 0) | (act >= buf.size)][0]
            raise OutOfBoundsError(
                f"index {int(bad)} out of bounds for buffer "
                f"{buf.name!r} of size {buf.size}"
            )

    def _count_transactions(self, buf: Buffer, act_idx: np.ndarray,
                            act_warp: np.ndarray, stats: KernelStats,
                            reuse: tuple | None = None) -> None:
        """Per warp, count the distinct 128-byte segments touched.

        A segment requested by several warps *within one access* is fetched
        from DRAM once; the other warps' requests are L2 hits (the
        block-level broadcast a real cache provides for redundant loads).

        When ``reuse=(cache, slot)`` is given, segments that this same
        statement touched on its *previous* execution also hit the L2 —
        the sequential-chunk locality of a thread walking a contiguous
        range (each lane stays inside one 128-byte segment for several
        iterations).  This keeps the blocking-scheduling penalty at a
        cache-service ratio instead of an unrealistic full-DRAM refetch
        per iteration.
        """
        seg = (buf.base + act_idx.astype(np.int64) * buf.dtype.itemsize) \
            // self.device.transaction_bytes
        # distinct (warp, segment) pairs == total warp requests
        key = act_warp.astype(np.int64) * (1 << 40) + seg
        requests = int(np.unique(key).size)
        uniq_seg = np.unique(seg)
        if reuse is not None:
            cache, slot = reuse
            prev = cache.get(slot)
            if prev is None:
                dram = int(uniq_seg.size)
            else:
                dram = int((~np.isin(uniq_seg, prev,
                                     assume_unique=True)).sum())
            cache[slot] = uniq_seg
        else:
            dram = int(uniq_seg.size)
        stats.global_transactions += dram
        stats.l2_transactions += requests - dram
        stats.global_bytes += int(act_idx.size) * buf.dtype.itemsize
        stats.dram_bytes += dram * self.device.transaction_bytes


class SharedMemory:
    """Per-block shared memory: named arrays + bank-conflict accounting."""

    def __init__(self, device: DeviceProperties,
                 specs: tuple,  # tuple[SharedArraySpec, ...]
                 stats: KernelStats, faults=None):
        self.device = device
        self.stats = stats
        self.faults = faults  # opt-in repro.faults.FaultInjector
        self._arrays: dict[str, np.ndarray] = {}
        self._offsets: dict[str, int] = {}
        self._dtypes: dict[str, DType] = {}
        off = 0
        # overlay groups share one region sized by the largest member
        # (the paper's §3.3 mixed-dtype reduction-buffer sharing)
        overlay_off: dict[str, int] = {}
        overlay_end: dict[str, int] = {}
        for spec in specs:
            a = spec.dtype.itemsize  # align to element size, as nvcc does
            if spec.overlay is not None and spec.overlay in overlay_off:
                base = overlay_off[spec.overlay]
                base = (base + a - 1) // a * a
                self._offsets[spec.name] = base
                overlay_end[spec.overlay] = max(
                    overlay_end[spec.overlay], base + spec.nbytes)
                off = max(off, overlay_end[spec.overlay])
            else:
                off = (off + a - 1) // a * a
                self._offsets[spec.name] = off
                if spec.overlay is not None:
                    overlay_off[spec.overlay] = off
                    overlay_end[spec.overlay] = off + spec.nbytes
                off += spec.nbytes
            self._dtypes[spec.name] = spec.dtype
            self._arrays[spec.name] = np.zeros(spec.size, dtype=spec.dtype.np)
        # recompute the true footprint: max end over all placements
        total = 0
        for spec in specs:
            total = max(total,
                        self._offsets[spec.name] + spec.nbytes)
        off = total
        if off > device.shared_mem_per_block:
            raise ResourceError(
                f"kernel requires {off} bytes of shared memory; device limit "
                f"is {device.shared_mem_per_block}"
            )
        self.total_bytes = off

    def load(self, name: str, idx: np.ndarray, mask: np.ndarray,
             warp_of: np.ndarray) -> np.ndarray:
        arr = self._array(name, idx, mask)
        out = np.zeros(idx.shape, dtype=arr.dtype)
        act = idx[mask]
        if act.size:
            out[mask] = arr[act]
            self._count_banks(name, act, warp_of[mask])
            if self.faults is not None:
                self.faults.on_sload(name, out, mask)
        return out

    def store(self, name: str, idx: np.ndarray, values: np.ndarray,
              mask: np.ndarray, warp_of: np.ndarray) -> None:
        arr = self._array(name, idx, mask)
        act = idx[mask]
        if not act.size:
            return
        arr[act] = np.asarray(values, dtype=arr.dtype)[mask]
        self._count_banks(name, act, warp_of[mask])

    def read_array(self, name: str) -> np.ndarray:
        """Direct (cost-free) view for tests and debugging."""
        return self._arrays[name]

    # -- internals -----------------------------------------------------------

    def _array(self, name: str, idx: np.ndarray, mask: np.ndarray) -> np.ndarray:
        try:
            arr = self._arrays[name]
        except KeyError:
            raise OutOfBoundsError(f"no such shared array {name!r}") from None
        act = idx[mask]
        if act.size and (act.min() < 0 or act.max() >= arr.size):
            bad = act[(act < 0) | (act >= arr.size)][0]
            raise OutOfBoundsError(
                f"index {int(bad)} out of bounds for shared array "
                f"{name!r} of size {arr.size}"
            )
        return arr

    def _count_banks(self, name: str, act_idx: np.ndarray,
                     act_warp: np.ndarray) -> None:
        """Conflict-serialized access count for one warp-synchronous access.

        Per warp: group the *distinct words* touched by bank; the access
        serializes into ``max_over_banks(#distinct words)`` shared accesses.
        Lanes reading the same word broadcast for free.
        """
        itemsize = self._dtypes[name].itemsize
        word = (self._offsets[name] + act_idx.astype(np.int64) * itemsize) \
            // self.device.shared_mem_bank_width
        nbanks = self.device.shared_mem_banks
        # distinct (warp, word) pairs
        key = act_warp.astype(np.int64) * (1 << 40) + word
        uniq = np.unique(key)
        uw_warp = uniq >> 40
        uw_bank = (uniq & ((1 << 40) - 1)) % nbanks
        # count distinct words per (warp, bank), then take max per warp
        key2 = uw_warp * nbanks + uw_bank
        k2, counts = np.unique(key2, return_counts=True)
        warps2 = k2 // nbanks
        # segment max: warps2 is sorted; find boundaries
        starts = np.flatnonzero(np.r_[True, warps2[1:] != warps2[:-1]])
        degrees = np.maximum.reduceat(counts, starts)
        serialized = int(degrees.sum())
        self.stats.shared_accesses += serialized
        self.stats.bank_conflict_extra += serialized - int(degrees.size)
