"""Simulated device memories with traffic accounting.

``GlobalMemory`` holds named buffers laid out on a flat byte address space
(256-byte aligned, like ``cudaMalloc``), so coalescing is computed from real
byte addresses: each warp access is split into the set of 128-byte segments
it touches, and each segment is one transaction.  Fully coalesced accesses by
a 32-thread warp of 4-byte elements therefore cost 1 transaction; a strided
(blocking-scheduled) access costs up to 32 — this is the mechanism behind the
paper's preference for window-sliding scheduling (§3.1.3).

``SharedMemory`` models the 32-bank, 4-byte-word Kepler shared memory: a warp
access that maps *n* distinct words to the same bank serializes into *n*
accesses (same-word broadcast is free).  The transposed reduction layouts the
paper rejects (Fig. 6(b) / 8(b)) pay for themselves here.

Store semantics: when several active threads store to the same element in one
statement, the highest thread id wins, deterministically.  This makes
missing-privatization races (the modeled commercial-compiler defects) produce
stable wrong answers instead of flaky ones.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.dtypes import DType
from repro.errors import OutOfBoundsError, ResourceError
from repro.gpu.device import DeviceProperties
from repro.gpu.events import KernelStats

__all__ = ["Buffer", "GlobalMemory", "SharedMemory", "BatchedSharedMemory",
           "finalize_segment_reuse"]

_ALIGN = 256

#: tag multiplier separating the block id from the segment id in the
#: batched segment-reuse bookkeeping; segment ids are byte address //
#: transaction size, far below 2^40 for any allocatable device memory
_SEG_TAG = 1 << 40


@dataclass
class Buffer:
    """A device global-memory buffer."""

    name: str
    dtype: DType
    size: int  # elements
    base: int  # byte address on the simulated device
    data: np.ndarray  # 1-D array of dtype.np, length == size

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize


class GlobalMemory:
    """Device global memory: a set of named buffers + traffic accounting."""

    def __init__(self, device: DeviceProperties):
        self.device = device
        self._buffers: dict[str, Buffer] = {}
        self._next_base = _ALIGN  # leave address 0 unused, like real allocators
        #: opt-in fault injector (repro.faults.FaultInjector); attached per
        #: launch by CompiledKernel.run — None means no fault work at all
        self.faults = None
        #: absolute index of the block currently executing (set by the
        #: reference executor per block) so fault sites key the per-block
        #: RNG substream; None routes to the injector's main stream
        self.fault_block = None

    # -- allocation --------------------------------------------------------

    def alloc(self, name: str, size: int, dtype: DType,
              init: np.ndarray | None = None) -> Buffer:
        """Allocate a named buffer; optionally copy initial contents."""
        if name in self._buffers:
            raise ResourceError(f"buffer {name!r} already allocated")
        if size < 0:
            raise ResourceError(f"negative buffer size {size} for {name!r}")
        nbytes = size * dtype.itemsize
        used = sum(b.nbytes for b in self._buffers.values())
        if used + nbytes > self.device.global_mem_bytes:
            raise ResourceError(
                f"allocating {nbytes} bytes for {name!r} exceeds device memory "
                f"({used} bytes in use of {self.device.global_mem_bytes})"
            )
        data = np.zeros(size, dtype=dtype.np)
        if init is not None:
            flat = np.asarray(init, dtype=dtype.np).reshape(-1)
            if flat.size != size:
                raise ResourceError(
                    f"init for {name!r} has {flat.size} elements, expected {size}"
                )
            data[:] = flat
        buf = Buffer(name, dtype, size, self._next_base, data)
        self._next_base += (nbytes + _ALIGN - 1) // _ALIGN * _ALIGN
        self._buffers[name] = buf
        return buf

    def free(self, name: str) -> None:
        """Release a buffer (address space is not recycled; fine for runs)."""
        del self._buffers[name]

    def __contains__(self, name: str) -> bool:
        return name in self._buffers

    def __getitem__(self, name: str) -> Buffer:
        try:
            return self._buffers[name]
        except KeyError:
            raise OutOfBoundsError(f"no such buffer {name!r}") from None

    def buffers(self) -> list[Buffer]:
        return list(self._buffers.values())

    # -- access (called by the executor with per-thread index vectors) ------

    def load(self, name: str, idx: np.ndarray, mask: np.ndarray,
             warp_of: np.ndarray, stats: KernelStats,
             reuse: tuple | None = None) -> np.ndarray:
        """Gather ``buffer[idx]`` for active threads; count transactions.

        Returns a full-width vector; lanes with ``mask == False`` hold the
        buffer's zero value (they are never observed by correct kernels).
        ``reuse`` is an optional ``(cache_dict, slot)`` pair enabling the
        statement-level segment-reuse model (see ``_count_transactions``).
        """
        buf = self[name]
        act = idx[mask]
        self._check_bounds(buf, act)
        out = np.zeros(idx.shape, dtype=buf.dtype.np)
        if act.size:
            out[mask] = buf.data[act]
            self._count_transactions(buf, act, warp_of[mask], stats, reuse)
            if self.faults is not None:
                # transient read upset: corrupts the gathered register
                # vector only, never the buffer contents
                self.faults.on_gload(name, out, mask,
                                     block=self.fault_block)
        return out

    def store(self, name: str, idx: np.ndarray, values: np.ndarray,
              mask: np.ndarray, warp_of: np.ndarray,
              stats: KernelStats, reuse: tuple | None = None) -> None:
        """Scatter ``buffer[idx] = values`` for active threads.

        Duplicate indices: highest thread id wins (NumPy fancy assignment
        applies positions in order and thread vectors are id-ordered).
        """
        buf = self[name]
        act = idx[mask]
        if not act.size:
            return
        self._check_bounds(buf, act)
        buf.data[act] = np.asarray(values, dtype=buf.dtype.np)[mask]
        self._count_transactions(buf, act, warp_of[mask], stats, reuse)

    def atomic_update(self, name: str, idx: np.ndarray, values: np.ndarray,
                      mask: np.ndarray, warp_of: np.ndarray,
                      stats: KernelStats, combine) -> None:
        """Read-modify-write where duplicate indices *combine* via ``combine``.

        ``combine`` is a NumPy ufunc (e.g. ``np.add``); ``ufunc.at`` gives the
        atomics semantics.  Each lane is charged a transaction (atomics do not
        coalesce on Kepler-class hardware).
        """
        buf = self[name]
        act = idx[mask]
        if not act.size:
            return
        self._check_bounds(buf, act)
        combine.at(buf.data, act, np.asarray(values, dtype=buf.dtype.np)[mask])
        stats.global_transactions += int(act.size)
        stats.global_bytes += int(act.size) * buf.dtype.itemsize * 2
        stats.dram_bytes += int(act.size) * buf.dtype.itemsize * 2

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _check_bounds(buf: Buffer, act: np.ndarray) -> None:
        if act.size and (act.min() < 0 or act.max() >= buf.size):
            bad = act[(act < 0) | (act >= buf.size)][0]
            raise OutOfBoundsError(
                f"index {int(bad)} out of bounds for buffer "
                f"{buf.name!r} of size {buf.size}"
            )

    def _count_transactions(self, buf: Buffer, act_idx: np.ndarray,
                            act_warp: np.ndarray, stats: KernelStats,
                            reuse: tuple | None = None) -> None:
        """Per warp, count the distinct 128-byte segments touched.

        A segment requested by several warps *within one access* is fetched
        from DRAM once; the other warps' requests are L2 hits (the
        block-level broadcast a real cache provides for redundant loads).

        When ``reuse=(cache, slot)`` is given, segments that this same
        statement touched on its *previous* execution also hit the L2 —
        the sequential-chunk locality of a thread walking a contiguous
        range (each lane stays inside one 128-byte segment for several
        iterations).  This keeps the blocking-scheduling penalty at a
        cache-service ratio instead of an unrealistic full-DRAM refetch
        per iteration.
        """
        seg = (buf.base + act_idx.astype(np.int64) * buf.dtype.itemsize) \
            // self.device.transaction_bytes
        # distinct (warp, segment) pairs == total warp requests
        key = act_warp.astype(np.int64) * (1 << 40) + seg
        requests = int(np.unique(key).size)
        uniq_seg = np.unique(seg)
        if reuse is not None:
            cache, slot = reuse
            prev = cache.get(slot)
            if prev is None:
                dram = int(uniq_seg.size)
            else:
                dram = int((~np.isin(uniq_seg, prev,
                                     assume_unique=True)).sum())
            cache[slot] = uniq_seg
        else:
            dram = int(uniq_seg.size)
        stats.global_transactions += dram
        stats.l2_transactions += requests - dram
        stats.global_bytes += int(act_idx.size) * buf.dtype.itemsize
        stats.dram_bytes += dram * self.device.transaction_bytes

    # -- batched access (all blocks of a chunk advance in one call) ---------

    def load_batched(self, name: str, idx: np.ndarray, mask: np.ndarray,
                     warpkey: np.ndarray, block_of: np.ndarray,
                     block_ids: np.ndarray, stats: KernelStats,
                     reuse: tuple | None = None,
                     act: np.ndarray | None = None,
                     act_block: np.ndarray | None = None,
                     reps: tuple | None = None) -> np.ndarray:
        """Gather ``buffer[idx]`` for all active lanes of a block chunk.

        ``idx``/``mask`` are ``(blocks, threads)``; ``warpkey`` is an
        int64 ``(blocks, threads)`` array of block-qualified warp ids
        (distinct across the chunk's blocks), ``block_of`` the absolute
        block index per lane, ``block_ids`` the chunk's absolute block
        indices.  Counter totals are bit-identical to executing each
        block's access through :meth:`load` in block order.  ``act`` /
        ``act_block`` let a caller that already gathered ``idx[mask]`` /
        ``block_of[mask]`` (the checked executor path) avoid the second
        masked gather.  ``reps`` — ``(rep, rblk)`` per-block
        representative indices for statically per-block-uniform accesses
        — lets transaction counting skip the per-lane key construction
        entirely (see :meth:`_count_transactions_batched`).
        """
        buf = self[name]
        if act is None:
            act = idx[mask]
        out = np.zeros(idx.shape, dtype=buf.dtype.np)
        if act.size:
            self._check_bounds(buf, act)
            out[mask] = buf.data[act]
            if act_block is None and reps is None:
                act_block = block_of[mask]
            self._count_transactions_batched(buf, act, warpkey[mask],
                                             act_block, stats, reuse, reps)
            if self.faults is not None:
                for i in np.flatnonzero(mask.any(axis=1)):
                    self.faults.on_gload(name, out[i], mask[i],
                                         block=int(block_ids[i]))
        return out

    def store_batched(self, name: str, idx: np.ndarray, values: np.ndarray,
                      mask: np.ndarray, warpkey: np.ndarray,
                      block_of: np.ndarray, stats: KernelStats,
                      reuse: tuple | None = None,
                      act: np.ndarray | None = None,
                      act_block: np.ndarray | None = None,
                      reps: tuple | None = None) -> None:
        """Scatter ``buffer[idx] = values`` for a block chunk.

        Duplicate indices resolve exactly as the reference path: NumPy
        fancy assignment applies positions in (block, thread) order, so
        the highest (block, thread) wins — the same winner as blocks
        executed one at a time.
        """
        buf = self[name]
        if act is None:
            act = idx[mask]
        if not act.size:
            return
        self._check_bounds(buf, act)
        buf.data[act] = np.asarray(values, dtype=buf.dtype.np)[mask]
        if act_block is None and reps is None:
            act_block = block_of[mask]
        self._count_transactions_batched(buf, act, warpkey[mask],
                                         act_block, stats, reuse, reps)

    def _count_transactions_batched(self, buf: Buffer, act_idx: np.ndarray,
                                    act_warpkey: np.ndarray,
                                    act_block: np.ndarray,
                                    stats: KernelStats,
                                    reuse: tuple | None = None,
                                    reps: tuple | None = None,
                                    wreps: tuple | None = None) -> None:
        """Block-axis version of :meth:`_count_transactions`.

        Warp requests use block-qualified warp keys, so per-warp segment
        sets never merge across blocks and ``requests`` equals the sum of
        the per-block request counts.  The statement-level segment-reuse
        model needs more care: in the reference executor the per-slot
        cache chains *across* blocks (block ``b``'s first execution of a
        statement compares against the previous block's final segments).
        Here each block's segments are tagged with the block id, later
        executions compare against the same block's previous execution
        (exact), and first executions are counted as all-DRAM eagerly;
        :func:`finalize_segment_reuse` replays the cross-block chain at
        launch end and moves the overlap from DRAM to L2, restoring
        bit-identical totals.

        ``reps`` — ``(rep, rblk)``, one representative index and block id
        per active block — asserts the index is per-block uniform (the
        static :func:`~repro.gpu.executor_batched._lane_uniform_stmts`
        verdict).  Every lane of a block then touches the one segment its
        representative touches, so warp requests collapse to the distinct
        warp keys and the per-lane key construction below is skipped —
        the dominant cost of broadcast-heavy kernels.

        ``wreps`` — ``(rblk, lanes)``; ``act_idx`` then holds one
        representative index per *active warp* (in lane order), ``rblk``
        the block id of each, and ``lanes`` the true active-lane count.
        Asserts the index is per-warp uniform under a warp-uniform mask
        (the static :func:`~repro.gpu.executor_trace._warp_uniform_stmts`
        verdict plus the ``blockDim.x % warp_size == 0`` launch guard).
        One segment per warp and one rep per warp make ``requests`` the
        rep count outright, the block-tagged dedup collapses to the reps
        (every lane of a warp touches its rep's segment), and the byte
        count comes from ``lanes`` instead of ``act_idx.size``.
        """
        nbytes = int(act_idx.size) * buf.dtype.itemsize
        if wreps is not None:
            rblk, lanes = wreps
            nbytes = int(lanes) * buf.dtype.itemsize
            seg_r = act_idx.astype(np.int64)
            seg_r *= buf.dtype.itemsize
            seg_r += buf.base
            seg_r //= self.device.transaction_bytes
            # one rep per active warp with distinct block-qualified warp
            # keys: requests = the rep count
            requests = int(seg_r.size)
            bkey = rblk.astype(np.int64) * _SEG_TAG
            bkey += seg_r
            if not _is_sorted(bkey):
                bkey.sort()
            newseg = np.empty(bkey.size, dtype=bool)
            newseg[0] = True
            np.not_equal(bkey[1:], bkey[:-1], out=newseg[1:])
            uniq_bseg = bkey[newseg]
        elif reps is not None:
            rep, rblk = reps
            seg_r = rep.astype(np.int64)
            seg_r *= buf.dtype.itemsize
            seg_r += buf.base
            seg_r //= self.device.transaction_bytes
            # one segment per warp: requests = distinct warp keys (the
            # block-qualified keys arrive sorted along the lane order)
            requests = 1 + int(np.count_nonzero(
                act_warpkey[1:] != act_warpkey[:-1]))
            # one tagged segment per block, already unique and sorted
            # (rblk is strictly increasing)
            uniq_bseg = rblk.astype(np.int64) * _SEG_TAG
            uniq_bseg += seg_r
        else:
            # in-place key arithmetic: each array below is a fresh
            # temporary, so the compound expressions are unrolled to
            # avoid extra passes
            seg = act_idx.astype(np.int64)
            seg *= buf.dtype.itemsize
            seg += buf.base
            seg //= self.device.transaction_bytes
            # sort+diff dedup: ~10x cheaper than np.unique's hash path at
            # the per-statement sizes this runs at (callers guarantee
            # act_idx is non-empty)
            wkey = act_warpkey * _SEG_TAG
            wkey += seg
            if not _is_sorted(wkey):
                wkey.sort()
            requests = 1 + int(np.count_nonzero(wkey[1:] != wkey[:-1]))
            bkey = act_block * _SEG_TAG
            bkey += seg
            if not _is_sorted(bkey):
                bkey.sort()
            newseg = np.empty(bkey.size, dtype=bool)
            newseg[0] = True
            np.not_equal(bkey[1:], bkey[:-1], out=newseg[1:])
            uniq_bseg = bkey[newseg]
        if reuse is not None:
            cache, slot = reuse
            st = cache.get(slot)
            if st is None:
                st = cache[slot] = _SlotReuse()
            if st.cur.size:
                dram = int(uniq_bseg.size
                           - _in_sorted(uniq_bseg, st.cur).sum())
            else:
                dram = int(uniq_bseg.size)
            blk = uniq_bseg // _SEG_TAG
            bstart = np.empty(blk.size, dtype=bool)
            bstart[0] = True
            np.not_equal(blk[1:], blk[:-1], out=bstart[1:])
            starts = np.flatnonzero(bstart)
            pblocks = blk[starts]
            pb = pblocks.tolist()
            if not st.seen.issuperset(pb):
                for j, b in enumerate(pb):
                    if b not in st.seen:
                        lo = starts[j]
                        hi = starts[j + 1] if j + 1 < starts.size \
                            else uniq_bseg.size
                        st.first[b] = uniq_bseg[lo:hi] - b * _SEG_TAG
                        st.seen.add(b)
            if not st.cur.size or st.blocks.issubset(pbset := set(pb)):
                # every cached block is executing this statement, so the
                # eviction replaces the whole cache: skip the range
                # subtraction (the steady state of full-chunk loops)
                st.cur = uniq_bseg
                st.blocks = set(pb)
            else:
                # evict the executing blocks' previous entries: tagged
                # keys put each block in the contiguous key range
                # [b*TAG, (b+1)*TAG), so eviction is range subtraction
                lo = np.searchsorted(st.cur, pblocks * _SEG_TAG)
                hi = np.searchsorted(st.cur, (pblocks + 1) * _SEG_TAG)
                if len(pb) <= 8:
                    keep_mask = np.ones(st.cur.size, dtype=bool)
                    for l, h in zip(lo.tolist(), hi.tolist()):
                        keep_mask[l:h] = False
                    keep = st.cur[keep_mask]
                else:
                    delta = np.zeros(st.cur.size + 1, dtype=np.int32)
                    np.add.at(delta, lo, 1)
                    np.add.at(delta, hi, -1)
                    keep = st.cur[np.cumsum(delta[:-1]) == 0]
                st.cur = np.sort(np.concatenate([keep, uniq_bseg]))
                st.blocks |= pbset
        else:
            dram = int(uniq_bseg.size)
        stats.global_transactions += dram
        stats.l2_transactions += requests - dram
        stats.global_bytes += nbytes
        stats.dram_bytes += dram * self.device.transaction_bytes


def _is_sorted(a: np.ndarray) -> bool:
    """True when ``a`` is already non-decreasing.

    The dominant access shapes (coalesced walks, per-block-uniform
    broadcast reads) produce pre-sorted dedup keys, so one comparison
    pass routinely replaces an O(n log n) sort.
    """
    return a.size < 2 or bool((a[1:] >= a[:-1]).all())


def _in_sorted(values: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Membership of sorted ``values`` in sorted ``table``.

    Equivalent to ``np.isin(values, table, assume_unique=True)`` but a
    plain binary search — no hashing and no temporary concatenation, which
    makes it materially cheaper at the per-statement call rates of the
    batched executor's reuse bookkeeping.
    """
    if not table.size:
        return np.zeros(values.shape, dtype=bool)
    pos = np.minimum(np.searchsorted(table, values), table.size - 1)
    return table[pos] == values


class _SlotReuse:
    """Per-statement segment-reuse state for the batched executor."""

    __slots__ = ("cur", "first", "seen", "blocks")

    def __init__(self):
        #: sorted block-tagged segments of each block's latest execution
        self.cur = np.empty(0, dtype=np.int64)
        #: untagged segments of each block's *first* execution
        self.first: dict[int, np.ndarray] = {}
        self.seen: set[int] = set()
        #: blocks with an entry in ``cur`` (drives the full-replacement
        #: eviction fast path)
        self.blocks: set[int] = set()


def finalize_segment_reuse(cache: dict, stats: KernelStats,
                           transaction_bytes: int,
                           attr=None, slot_sids: dict | None = None) -> None:
    """Apply the cross-block reuse correction at batched-launch end.

    The reference executor runs blocks in index order, so block ``b``'s
    first execution of a statement sees the slot cache left by the nearest
    preceding block that executed it.  Replay that chain: for consecutive
    executing blocks ``(p, b)``, segments of ``b``'s first execution that
    also appear in ``p``'s final execution were counted as DRAM eagerly
    but are L2 hits in the reference accounting.

    ``attr`` (an :class:`~repro.gpu.events.AttributionTable`) with
    ``slot_sids`` (slot → stamped statement sid) applies the same
    correction to the owning statement's row — the correction is per
    slot, and each slot belongs to exactly one statement, so the
    per-statement tables stay bit-identical to the reference executor's.
    """
    for slot, st in cache.items():
        if not isinstance(st, _SlotReuse) or len(st.first) < 2:
            continue
        blocks = sorted(st.first)
        # one membership query for every consecutive pair: tag block b's
        # first-execution segments with its predecessor p and look them
        # up in the tagged cache — the p-range of ``cur`` holds exactly
        # p's final segments, so this is the pairwise intersection sum
        # without the per-pair python loop
        firsts = [st.first[b] for b in blocks[1:]]
        qry = np.concatenate(firsts)
        qry += np.repeat(
            np.asarray(blocks[:-1], dtype=np.int64) * _SEG_TAG,
            [f.size for f in firsts])
        overlap = int(_in_sorted(qry, st.cur).sum())
        if overlap:
            stats.global_transactions -= overlap
            stats.l2_transactions += overlap
            stats.dram_bytes -= overlap * transaction_bytes
            if attr is not None:
                row = attr.row(slot_sids.get(slot, -1)
                               if slot_sids is not None else -1)
                row.global_transactions -= overlap
                row.l2_transactions += overlap
                row.dram_bytes -= overlap * transaction_bytes


class SharedMemory:
    """Per-block shared memory: named arrays + bank-conflict accounting."""

    def __init__(self, device: DeviceProperties,
                 specs: tuple,  # tuple[SharedArraySpec, ...]
                 stats: KernelStats, faults=None):
        self.device = device
        self.stats = stats
        self.faults = faults  # opt-in repro.faults.FaultInjector
        self.fault_block = None  # executing block (reference executor)
        self._arrays: dict[str, np.ndarray] = {}
        self._offsets: dict[str, int] = {}
        self._dtypes: dict[str, DType] = {}
        off = 0
        # overlay groups share one region sized by the largest member
        # (the paper's §3.3 mixed-dtype reduction-buffer sharing)
        overlay_off: dict[str, int] = {}
        overlay_end: dict[str, int] = {}
        for spec in specs:
            a = spec.dtype.itemsize  # align to element size, as nvcc does
            if spec.overlay is not None and spec.overlay in overlay_off:
                base = overlay_off[spec.overlay]
                base = (base + a - 1) // a * a
                self._offsets[spec.name] = base
                overlay_end[spec.overlay] = max(
                    overlay_end[spec.overlay], base + spec.nbytes)
                off = max(off, overlay_end[spec.overlay])
            else:
                off = (off + a - 1) // a * a
                self._offsets[spec.name] = off
                if spec.overlay is not None:
                    overlay_off[spec.overlay] = off
                    overlay_end[spec.overlay] = off + spec.nbytes
                off += spec.nbytes
            self._dtypes[spec.name] = spec.dtype
            self._arrays[spec.name] = np.zeros(spec.size, dtype=spec.dtype.np)
        # recompute the true footprint: max end over all placements
        total = 0
        for spec in specs:
            total = max(total,
                        self._offsets[spec.name] + spec.nbytes)
        off = total
        if off > device.shared_mem_per_block:
            raise ResourceError(
                f"kernel requires {off} bytes of shared memory; device limit "
                f"is {device.shared_mem_per_block}"
            )
        self.total_bytes = off

    def load(self, name: str, idx: np.ndarray, mask: np.ndarray,
             warp_of: np.ndarray) -> np.ndarray:
        arr = self._array(name, idx, mask)
        out = np.zeros(idx.shape, dtype=arr.dtype)
        act = idx[mask]
        if act.size:
            out[mask] = arr[act]
            self._count_banks(name, act, warp_of[mask])
            if self.faults is not None:
                self.faults.on_sload(name, out, mask,
                                     block=self.fault_block)
        return out

    def store(self, name: str, idx: np.ndarray, values: np.ndarray,
              mask: np.ndarray, warp_of: np.ndarray) -> None:
        arr = self._array(name, idx, mask)
        act = idx[mask]
        if not act.size:
            return
        arr[act] = np.asarray(values, dtype=arr.dtype)[mask]
        self._count_banks(name, act, warp_of[mask])

    def reset(self) -> None:
        """Zero all arrays, as a freshly allocated block would see them.

        Lets one allocation serve every block of a launch (the reference
        executor resets between blocks instead of reallocating)."""
        for arr in self._arrays.values():
            arr.fill(0)

    def read_array(self, name: str) -> np.ndarray:
        """Direct (cost-free) view for tests and debugging."""
        return self._arrays[name]

    # -- internals -----------------------------------------------------------

    def _array(self, name: str, idx: np.ndarray, mask: np.ndarray) -> np.ndarray:
        try:
            arr = self._arrays[name]
        except KeyError:
            raise OutOfBoundsError(f"no such shared array {name!r}") from None
        act = idx[mask]
        if act.size and (act.min() < 0 or act.max() >= arr.size):
            bad = act[(act < 0) | (act >= arr.size)][0]
            raise OutOfBoundsError(
                f"index {int(bad)} out of bounds for shared array "
                f"{name!r} of size {arr.size}"
            )
        return arr

    def _count_banks(self, name: str, act_idx: np.ndarray,
                     act_warp: np.ndarray) -> None:
        """Conflict-serialized access count for one warp-synchronous access.

        Per warp: group the *distinct words* touched by bank; the access
        serializes into ``max_over_banks(#distinct words)`` shared accesses.
        Lanes reading the same word broadcast for free.
        """
        itemsize = self._dtypes[name].itemsize
        word = (self._offsets[name] + act_idx.astype(np.int64) * itemsize) \
            // self.device.shared_mem_bank_width
        nbanks = self.device.shared_mem_banks
        # distinct (warp, word) pairs — sort+diff dedup, same sorted
        # result as np.unique at a fraction of the per-call overhead
        key = act_warp.astype(np.int64) * (1 << 40) + word
        if not _is_sorted(key):
            key.sort()
        keep = np.empty(key.size, dtype=bool)
        keep[0] = True
        np.not_equal(key[1:], key[:-1], out=keep[1:])
        uniq = key[keep]
        uw_warp = uniq >> 40
        uw_bank = (uniq & ((1 << 40) - 1)) % nbanks
        # count distinct words per (warp, bank), then take max per warp
        key2 = uw_warp * nbanks + uw_bank
        key2.sort()
        b2 = np.empty(key2.size, dtype=bool)
        b2[0] = True
        np.not_equal(key2[1:], key2[:-1], out=b2[1:])
        starts2 = np.flatnonzero(b2)
        counts = np.empty(starts2.size, dtype=np.int64)
        np.subtract(starts2[1:], starts2[:-1], out=counts[:-1])
        counts[-1] = key2.size - starts2[-1]
        warps2 = key2[starts2] // nbanks
        # segment max: warps2 is sorted; find boundaries
        starts = np.flatnonzero(np.r_[True, warps2[1:] != warps2[:-1]])
        degrees = np.maximum.reduceat(counts, starts)
        serialized = int(degrees.sum())
        self.stats.shared_accesses += serialized
        self.stats.bank_conflict_extra += serialized - int(degrees.size)


class BatchedSharedMemory(SharedMemory):
    """Shared memory for a chunk of blocks advancing together.

    Each named array is carried as a ``(blocks, size)`` matrix — one row
    per block of the chunk, so cross-block isolation is structural.  Bank
    accounting reuses :meth:`SharedMemory._count_banks` with
    block-qualified warp keys: per-(block, warp) conflict degrees are
    computed exactly as the per-block model and summed.
    """

    def __init__(self, device: DeviceProperties, specs: tuple,
                 stats: KernelStats, nblocks: int, faults=None,
                 block_ids: np.ndarray | None = None):
        super().__init__(device, specs, stats, faults=faults)
        self.nblocks = nblocks
        self.block_ids = block_ids  # absolute block index per row
        for name, arr in self._arrays.items():
            self._arrays[name] = np.zeros((nblocks, arr.size),
                                          dtype=arr.dtype)

    def load(self, name: str, idx: np.ndarray, mask: np.ndarray,
             warpkey: np.ndarray, rows: np.ndarray) -> np.ndarray:
        """Gather with ``(blocks, threads)`` index/mask arrays.

        ``warpkey`` holds block-qualified warp ids, ``rows`` the chunk row
        index per lane.
        """
        arr = self._array2(name, idx, mask)
        out = np.zeros(idx.shape, dtype=arr.dtype)
        act = idx[mask]
        if act.size:
            out[mask] = arr[rows[mask], act]
            self._count_banks(name, act, warpkey[mask])
            if self.faults is not None:
                # the executor may pass row-compacted arrays: mask row i
                # maps to chunk row rows[i, 0], which indexes block_ids
                ids = self.block_ids
                for i in np.flatnonzero(mask.any(axis=1)):
                    b = int(ids[rows[i, 0]]) if ids is not None else None
                    self.faults.on_sload(name, out[i], mask[i], block=b)
        return out

    def store(self, name: str, idx: np.ndarray, values: np.ndarray,
              mask: np.ndarray, warpkey: np.ndarray,
              rows: np.ndarray) -> None:
        arr = self._array2(name, idx, mask)
        act = idx[mask]
        if not act.size:
            return
        arr[rows[mask], act] = np.asarray(values, dtype=arr.dtype)[mask]
        self._count_banks(name, act, warpkey[mask])

    def read_block(self, name: str, row: int) -> np.ndarray:
        """One block's view of a shared array (tests/debugging)."""
        return self._arrays[name][row]

    def _array2(self, name: str, idx: np.ndarray,
                mask: np.ndarray) -> np.ndarray:
        try:
            arr = self._arrays[name]
        except KeyError:
            raise OutOfBoundsError(f"no such shared array {name!r}") from None
        act = idx[mask]
        size = arr.shape[1]
        if act.size and (act.min() < 0 or act.max() >= size):
            bad = act[(act < 0) | (act >= size)][0]
            raise OutOfBoundsError(
                f"index {int(bad)} out of bounds for shared array "
                f"{name!r} of size {size}"
            )
        return arr
