"""Kernel launch convenience: compile, execute, time — and profile — a kernel."""

from __future__ import annotations

from dataclasses import dataclass

from repro.gpu.costmodel import CostModel, TimeBreakdown
from repro.gpu.device import DeviceProperties, K20C
from repro.gpu.events import KernelStats
from repro.gpu.executor import CompiledKernel
from repro.gpu.kernelir import Kernel
from repro.gpu.memory import GlobalMemory

__all__ = ["LaunchReport", "launch"]


@dataclass
class LaunchReport:
    """Result of one kernel launch: counters plus modeled time."""

    kernel: Kernel
    stats: KernelStats
    timing: TimeBreakdown

    @property
    def modeled_us(self) -> float:
        return self.timing.total_us

    @property
    def modeled_ms(self) -> float:
        return self.timing.total_us / 1000.0


def launch(kernel: Kernel, gmem: GlobalMemory, *, grid_dim: int,
           block_dim: tuple[int, int], params: dict | None = None,
           device: DeviceProperties = K20C, trace: bool = False,
           profiler=None, faults=None,
           watchdog_budget: int | None = None) -> LaunchReport:
    """Compile ``kernel``, run it over the grid, and model its time.

    ``trace=True`` turns on per-access :class:`~repro.gpu.events.TraceEvent`
    collection for this launch (the same knob
    :meth:`~repro.gpu.executor.CompiledKernel.run` takes); it is off by
    default because it records one event per memory statement execution.
    ``profiler`` (a :class:`repro.obs.Profiler`) receives a
    :class:`~repro.obs.record.KernelRecord` for the launch.  ``faults``
    (a :class:`repro.faults.FaultInjector`) and ``watchdog_budget`` are
    forwarded to :meth:`~repro.gpu.executor.CompiledKernel.run` — the
    former arms fault injection for this launch, the latter overrides the
    per-launch loop-step budget.

    For repeated launches of the same kernel (iterative solvers), prefer
    compiling once with :class:`~repro.gpu.executor.CompiledKernel` and
    calling ``.run`` per iteration; this helper recompiles every call.
    """
    ck = CompiledKernel(kernel, device)
    stats = ck.run(gmem, grid_dim, block_dim, params=params, trace=trace,
                   faults=faults, watchdog_budget=watchdog_budget)
    timing = CostModel(device).kernel_time(stats)
    if profiler is not None:
        profiler.record_kernel(kernel.name, stats, timing,
                               grid_dim=grid_dim, block_dim=block_dim,
                               device=device)
    return LaunchReport(kernel=kernel, stats=stats, timing=timing)
