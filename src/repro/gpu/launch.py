"""Kernel launch convenience: compile, execute, time — and profile — a kernel."""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass

from repro.gpu.costmodel import CostModel, TimeBreakdown
from repro.gpu.device import DeviceProperties, K20C
from repro.gpu.events import KernelStats
from repro.gpu.executor import CompiledKernel
from repro.gpu.kernelir import Kernel, walk_stmts
from repro.gpu.memory import GlobalMemory
from repro.obs import timeline as _timeline

__all__ = ["LaunchReport", "launch", "compile_cache_info",
           "compile_cache_clear"]

#: keyed compile cache: kernel identity x device x compile configuration
#: -> CompiledKernel.  Kernel and DeviceProperties are frozen dataclasses,
#: so structural identity is the base key; ``options_key`` (the pipeline /
#: lowering configuration that produced the kernel) and the sid stamping
#: are mixed in because statement sids are ``compare=False`` — two
#: structurally equal kernels with different stamping (or from different
#: pass pipelines) must not share a compiled closure, or per-statement
#: attribution would be charged to the wrong sids.  Executor mode and
#: ``block_batch`` are deliberately *not* part of the key: they are
#: launch-time arguments dispatched inside ``CompiledKernel.run``, and
#: the per-mode artifacts (reference closures, batched closures, the
#: trace-compiled function) live in separate fields of the one cached
#: object — no closure bakes either in, so a mode switch on the same
#: kernel+device can never observe a stale artifact (pinned by
#: tests/gpu/test_launch_cache.py).  An LRU bound keeps
#: pathological sweeps from accumulating closures forever; the
#: ``REPRO_LAUNCH_CACHE_MAX`` environment variable overrides the default
#: bound (64) so the service layer can size the per-process memory it is
#: willing to spend on compiled closures.
_COMPILE_CACHE: "OrderedDict[tuple, CompiledKernel]" = OrderedDict()
_COMPILE_CACHE_DEFAULT_MAX = 64
_cache_hits = 0
_cache_misses = 0
_cache_evictions = 0


def _cache_max() -> int:
    """The LRU bound: ``REPRO_LAUNCH_CACHE_MAX`` env, else the default.

    Read per-call (not at import) so a service process can retune the
    bound without reloading the module; values < 1 clamp to 1 — a cache
    that can hold nothing would recompile every launch.
    """
    raw = os.environ.get("REPRO_LAUNCH_CACHE_MAX")
    if not raw:
        return _COMPILE_CACHE_DEFAULT_MAX
    try:
        return max(1, int(raw))
    except ValueError:
        return _COMPILE_CACHE_DEFAULT_MAX


# kept for importers of the historical constant (tests, tooling); the
# live bound is _cache_max()
_COMPILE_CACHE_MAX = _COMPILE_CACHE_DEFAULT_MAX


def _sid_fingerprint(kernel: Kernel) -> tuple[int, ...]:
    return tuple(s.sid for s, _ in walk_stmts(kernel.body))


#: kernel-note markers the kernelopt fusion passes stamp on rewritten
#: kernels; mixed into the compile-cache key so a fused and an unfused
#: build of the same region can never alias, even if a future rewrite
#: made their bodies structurally equal
_FUSION_MARKERS = ("fused finish kernel", "cascade-fused finish")


def _fusion_fingerprint(kernel: Kernel) -> tuple[str, ...]:
    """Which fusion rewrites produced this kernel, per its note."""
    return tuple(m for m in _FUSION_MARKERS if m in kernel.note)


def _compiled(kernel: Kernel, device: DeviceProperties,
              options_key=None) -> CompiledKernel:
    global _cache_hits, _cache_misses, _cache_evictions
    key = (kernel, device, options_key, _sid_fingerprint(kernel),
           _fusion_fingerprint(kernel))
    ck = _COMPILE_CACHE.get(key)
    tl = _timeline.current()
    if ck is not None:
        _cache_hits += 1
        _COMPILE_CACHE.move_to_end(key)
        if tl is not None:
            tl.counter("gpu", "compile_cache", event="hit",
                       kernel=kernel.name, hits=_cache_hits,
                       misses=_cache_misses, size=len(_COMPILE_CACHE))
        return ck
    _cache_misses += 1
    ck = CompiledKernel(kernel, device)
    _COMPILE_CACHE[key] = ck
    maxsize = _cache_max()
    while len(_COMPILE_CACHE) > maxsize:
        _COMPILE_CACHE.popitem(last=False)
        _cache_evictions += 1
        if tl is not None:
            tl.counter("gpu", "compile_cache", event="evict",
                       evictions=_cache_evictions,
                       size=len(_COMPILE_CACHE))
    if tl is not None:
        tl.counter("gpu", "compile_cache", event="miss",
                   kernel=kernel.name, hits=_cache_hits,
                   misses=_cache_misses, size=len(_COMPILE_CACHE))
    return ck


def compile_cache_info() -> dict:
    """Hit/miss/evict/size snapshot of the launch compile cache."""
    return {"hits": _cache_hits, "misses": _cache_misses,
            "evictions": _cache_evictions,
            "size": len(_COMPILE_CACHE), "maxsize": _cache_max()}


def compile_cache_clear() -> None:
    """Drop every cached compilation and zero the hit/miss/evict counters."""
    global _cache_hits, _cache_misses, _cache_evictions
    _COMPILE_CACHE.clear()
    _cache_hits = 0
    _cache_misses = 0
    _cache_evictions = 0


@dataclass
class LaunchReport:
    """Result of one kernel launch: counters plus modeled time."""

    kernel: Kernel
    stats: KernelStats
    timing: TimeBreakdown

    @property
    def modeled_us(self) -> float:
        return self.timing.total_us

    @property
    def modeled_ms(self) -> float:
        return self.timing.total_us / 1000.0


def launch(kernel: Kernel, gmem: GlobalMemory, *, grid_dim: int,
           block_dim: tuple[int, int], params: dict | None = None,
           device: DeviceProperties = K20C, trace: bool = False,
           profiler=None, faults=None,
           watchdog_budget: int | None = None,
           mode: str | None = None,
           block_batch: int | None = None,
           attribution: bool = False,
           options_key=None) -> LaunchReport:
    """Compile ``kernel``, run it over the grid, and model its time.

    ``trace=True`` turns on per-access :class:`~repro.gpu.events.TraceEvent`
    collection for this launch (the same knob
    :meth:`~repro.gpu.executor.CompiledKernel.run` takes); it is off by
    default because it records one event per memory statement execution.
    ``profiler`` (a :class:`repro.obs.Profiler`) receives a
    :class:`~repro.obs.record.KernelRecord` for the launch.  ``faults``
    (a :class:`repro.faults.FaultInjector`) and ``watchdog_budget`` are
    forwarded to :meth:`~repro.gpu.executor.CompiledKernel.run` — the
    former arms fault injection for this launch, the latter overrides the
    per-launch loop-step budget.  ``mode`` / ``block_batch`` select the
    executor path (batched by default) and its block chunk size.

    ``attribution=True`` additionally fills a per-statement
    :class:`~repro.gpu.events.AttributionTable` on ``stats.attribution``
    (see :mod:`repro.obs.attribution` for rendering).

    Compilation is served from a keyed cache (kernel identity × device ×
    ``options_key`` × sid stamping), so iterative callers that re-launch
    the same kernel pay the closure compilation once;
    :func:`compile_cache_info` exposes hit/miss counts.  Callers that
    compile the same source under different configurations (pipelines,
    lowering options) pass a hashable ``options_key`` so the variants
    never share a cache entry.
    """
    ck = _compiled(kernel, device, options_key)
    stats = ck.run(gmem, grid_dim, block_dim, params=params, trace=trace,
                   faults=faults, watchdog_budget=watchdog_budget,
                   mode=mode, block_batch=block_batch,
                   attribution=attribution)
    timing = CostModel(device).kernel_time(stats)
    tl = _timeline.current()
    if tl is not None:
        tl.span("gpu", f"kernel:{kernel.name}", timing.total_us,
                grid=grid_dim, block=list(block_dim),
                executor=ck.effective_mode(mode, grid_dim, gmem, faults,
                                           trace_events=trace))
    if profiler is not None:
        profiler.record_kernel(kernel.name, stats, timing,
                               grid_dim=grid_dim, block_dim=block_dim,
                               device=device,
                               executor=ck.effective_mode(mode, grid_dim,
                                                          gmem, faults,
                                                          trace_events=trace),
                               kernel=kernel)
    return LaunchReport(kernel=kernel, stats=stats, timing=timing)
