"""Batched-block executor: every block of a launch advances at once.

The reference executor (:mod:`repro.gpu.executor`) walks grid blocks one
at a time, so the Python statement-dispatch overhead scales with
``grid_dim`` even though blocks are independent by construction — the
premise of the gang level.  This module re-compiles the same kernel IR
into closures over arrays with a **leading block axis**: registers and
masks are ``(blocks, threads)``, shared memory is ``(blocks, size)``,
``blockIdx.x`` is a ``(blocks, 1)`` column that broadcasts, and one NumPy
operation advances all blocks of a chunk through a statement.

The contract is *bit identity* with the reference path: reduction
results, every :class:`~repro.gpu.events.KernelStats` counter, and the
fault-injection sites (via per-block RNG substreams,
:mod:`repro.faults.injector`) are identical for any ``block_batch``.
The non-obvious part is the statement-level segment-reuse model, whose
per-slot cache chains *across* blocks in the reference executor; see
:meth:`~repro.gpu.memory.GlobalMemory._count_transactions_batched` and
:func:`~repro.gpu.memory.finalize_segment_reuse` for how the batched
accounting restores the chain exactly.

Control-flow accounting parity (each derived from the reference rules):

* ``warp_inst_slots`` — every statement charges the *sum* of a per-block
  active-warp vector ``aw``; blocks with no active lanes carry 0, which
  matches the reference executor never reaching the statement for them.
* divergence — per-block warp masks of both branch sides, summed.
* loop ``steps`` (the watchdog currency) — each batched loop iteration
  adds the number of blocks still iterating, so the launch total equals
  the reference sum of per-block trip counts.
* barriers — a barrier under a partially-active block raises
  :class:`~repro.errors.BarrierDivergenceError` exactly as the reference
  path; fully-inactive blocks are skipped (they never reached it).
"""

from __future__ import annotations

import numpy as np

from repro.errors import BarrierDivergenceError, SimulationError
from repro.gpu import kernelir as K
from repro.gpu.device import DeviceProperties
from repro.gpu.events import KernelStats, TraceEvent
from repro.gpu.executor import (
    ATOMIC_OPS, _assign, _attr_global, _compile_expr, _truthy,
    _watchdog_trip, _stmt_slots,
)
from repro.gpu.memory import (
    BatchedSharedMemory, GlobalMemory, finalize_segment_reuse,
)

__all__ = ["BatchedBlockEnv", "run_batched", "DEFAULT_BLOCK_BATCH",
           "BatchSafety", "analyze_batch_safety"]

#: default chunk size: bounds the working set ((blocks, threads) arrays)
#: while amortizing statement dispatch over enough blocks to win
DEFAULT_BLOCK_BATCH = 256


# --------------------------------------------------------------------------
# block-independence analysis
# --------------------------------------------------------------------------
#
# Batching is bit-identical only when blocks do not communicate through
# global memory during the launch.  The reference executor runs blocks in
# index order, so a kernel whose later blocks *read* what earlier blocks
# wrote (the auto-parallelizer's serialized-fallback kernels do exactly
# this) observes that ordering; lock-step batching would break it.  The
# analysis below proves independence statically where it can; buffers it
# cannot prove anything about become *checked* — the batched run tracks a
# per-location owner block and aborts to the reference path the moment
# two blocks actually touch the same location (see ``_BatchHazard``).
# Correctness first, speed wherever independence holds at runtime.

class _BatchHazard(Exception):
    """Raised mid-launch when checked blocks touch a common location.

    Internal control flow only: :meth:`CompiledKernel.run` catches it,
    restores the pre-launch buffer contents, and reruns the launch on the
    reference path.
    """

    def __init__(self, buf: str):
        super().__init__(buf)
        self.buf = buf


class BatchSafety:
    """Verdict of the static block-independence analysis for one kernel.

    ``batchable`` is the static verdict (``False`` only for atomic
    read-modify-write mixes, which the runtime check cannot protect).
    ``checked_bufs`` are buffers whose block-disjointness could not be
    proved — the batched executor verifies it dynamically per access and
    falls back on the first violation.  ``looped_atomic_bufs`` (atomics
    that may fire on several loop iterations — order-sensitive for
    floats) defer to launch time, when buffer dtypes are known.
    ``written_bufs`` is everything the kernel may mutate — the snapshot
    set for rolling back an aborted checked launch.
    """

    __slots__ = ("batchable", "reason", "checked_bufs",
                 "looped_atomic_bufs", "written_bufs")

    def __init__(self, batchable, reason="", checked_bufs=(),
                 looped_atomic_bufs=(), written_bufs=()):
        self.batchable = batchable
        self.reason = reason
        self.checked_bufs = tuple(checked_bufs)
        self.looped_atomic_bufs = tuple(looped_atomic_bufs)
        self.written_bufs = tuple(written_bufs)


def _walk_expr(e, regs, specials):
    """Collect register names and thread-geometry specials of ``e``."""
    if isinstance(e, K.Reg):
        regs.add(e.name)
    elif isinstance(e, K.Special):
        specials.add(e.kind)
    elif isinstance(e, K.Bin):
        _walk_expr(e.a, regs, specials)
        _walk_expr(e.b, regs, specials)
    elif isinstance(e, (K.Un, K.Cast)):
        _walk_expr(e.a, regs, specials)
    elif isinstance(e, K.Call):
        for a in e.args:
            _walk_expr(a, regs, specials)
    elif isinstance(e, K.Select):
        _walk_expr(e.cond, regs, specials)
        _walk_expr(e.a, regs, specials)
        _walk_expr(e.b, regs, specials)
    # Const / Param carry no registers


def analyze_batch_safety(kernel) -> BatchSafety:
    """Prove (or refuse to prove) that the kernel's blocks are independent.

    Hazard shapes and their disposition:

    * a buffer atomically updated *and* plainly stored or loaded — the
      reference path outright (owner tracking cannot describe an atomic's
      many writers);
    * an atomic inside a loop — exact for the integer operator set, but
      float combines are rounding-order-sensitive across iterations
      (decided at launch time from the buffer dtype);
    * a plainly-stored buffer that is also loaded, stored through a
      data-dependent index, or stored at a non-``blockIdx``-derived
      index — *checked*: the batched run tracks a per-location owner
      block and aborts to the reference path on the first cross-block
      touch.  Kernels that stage through a scratch buffer at
      block-partitioned indices (the testsuite's ``temp`` arrays) pass
      the runtime check and keep the fast path.

    Registers are tracked with a monotone taint pass iterated to a fixed
    point so values flowing around loop back-edges are caught.
    """
    loaded, stored, atomics = set(), set(), set()
    tainted, blockvar = set(), set()          # register taint lattices
    scatter, uniform_store, looped_atomics = set(), set(), set()

    def visit(stmts, in_loop):
        for s in stmts:
            if isinstance(s, K.Assign):
                regs, spec = set(), set()
                _walk_expr(s.value, regs, spec)
                if regs & tainted:
                    tainted.add(s.dst)
                if "bx" in spec or regs & blockvar:
                    blockvar.add(s.dst)
            elif isinstance(s, K.GLoad):
                loaded.add(s.buf)
                tainted.add(s.dst)
            elif isinstance(s, K.SLoad):
                # shared memory is per-block, but its contents may have
                # come from global loads — taint conservatively
                tainted.add(s.dst)
            elif isinstance(s, K.ShflDown):
                if s.src in tainted:
                    tainted.add(s.dst)
                if s.src in blockvar:
                    blockvar.add(s.dst)
            elif isinstance(s, K.GStore):
                stored.add(s.buf)
                regs, spec = set(), set()
                _walk_expr(s.index, regs, spec)
                if regs & tainted:
                    scatter.add(s.buf)
                if "bx" not in spec and not (regs & blockvar):
                    uniform_store.add(s.buf)
            elif isinstance(s, K.AtomicUpdate):
                atomics.add(s.buf)
                if in_loop:
                    looped_atomics.add(s.buf)
            elif isinstance(s, K.If):
                visit(s.then, in_loop)
                visit(s.orelse, in_loop)
            elif isinstance(s, (K.While, K.UniformWhile)):
                visit(s.body, True)
            # Sync / Comment / SStore don't move the verdict

    while True:
        before = tuple(map(len, (tainted, blockvar, scatter,
                                 uniform_store, looped_atomics)))
        visit(kernel.body, False)
        after = tuple(map(len, (tainted, blockvar, scatter,
                                uniform_store, looped_atomics)))
        if after == before:
            break

    rw = sorted((atomics & loaded) | (stored & atomics))
    if rw:
        return BatchSafety(False, f"buffer(s) {rw} mix atomics with plain "
                                  "accesses (cross-block ordering)")
    checked = (stored & loaded) | scatter | uniform_store
    return BatchSafety(True, checked_bufs=sorted(checked),
                       looped_atomic_bufs=sorted(looped_atomics),
                       written_bufs=sorted(stored | atomics))


class BatchedBlockEnv:
    """Mutable state of one executing *chunk* of thread blocks.

    Field-compatible with :class:`~repro.gpu.executor.BlockEnv` where the
    expression compiler cares (``tid``/``tx``/``ty`` stay ``(threads,)``
    and broadcast; ``bx`` is ``(blocks, 1)``), so the scalar expression
    closures run unchanged on the block-axis arrays.
    """

    __slots__ = (
        "regs", "tx", "ty", "tid", "bx", "bdx", "bdy", "gdx", "ntid",
        "warp_starts", "nwarps", "warpkey", "block_of", "rows", "block_ids",
        "gmem", "smem", "stats", "params", "block_mask", "trace",
        "block_index", "seg_cache", "kernel_name", "steps",
        "watchdog_budget", "stuck", "check", "attr",
    )

    def __init__(self, bdx: int, bdy: int, gdx: int, block_ids: np.ndarray,
                 gmem: GlobalMemory, stats: KernelStats, params: dict,
                 warp_size: int, trace: bool):
        n = bdx * bdy
        nb = len(block_ids)
        tid = np.arange(n, dtype=np.int32)
        self.tid = tid
        self.tx = (tid % bdx).astype(np.int32)
        self.ty = (tid // bdx).astype(np.int32)
        self.bdx = np.int32(bdx)
        self.bdy = np.int32(bdy)
        self.gdx = np.int32(gdx)
        self.ntid = np.int32(n)
        self.bx = block_ids.astype(np.int32).reshape(nb, 1)
        warp_of = (tid // warp_size).astype(np.int64)
        self.warp_starts = np.arange(0, n, warp_size)
        self.nwarps = len(self.warp_starts)
        # block-qualified warp ids: distinct across the chunk's blocks so
        # (warp, segment) request keys never merge between blocks
        self.warpkey = (np.arange(nb, dtype=np.int64)[:, None]
                        * self.nwarps + warp_of[None, :])
        self.block_of = np.broadcast_to(
            block_ids.astype(np.int64)[:, None], (nb, n))
        self.rows = np.broadcast_to(np.arange(nb)[:, None], (nb, n))
        self.block_ids = block_ids
        self.gmem = gmem
        self.smem = None
        self.stats = stats
        self.params = params
        self.block_mask = np.ones((nb, n), dtype=bool)
        self.regs: dict[str, np.ndarray] = {}
        self.trace = trace
        self.block_index = int(block_ids[0])
        self.seg_cache: dict = {}
        self.kernel_name = ""
        self.steps = 0
        self.watchdog_budget: float = float("inf")
        self.stuck = False
        #: per-buffer owner-block arrays for checked launches (or None)
        self.check: dict | None = None
        #: opt-in per-statement AttributionTable (shared with the launch
        #: stats; None = accounting off)
        self.attr = None


def _warps_per_block(env: BatchedBlockEnv, mask: np.ndarray) -> np.ndarray:
    """Active-warp count per block, as an int64 ``(blocks,)`` vector."""
    t = np.add.reduceat(mask, env.warp_starts, axis=1) > 0
    return t.sum(axis=1)


#: thread-geometry specials that vary across the lanes of one block
_LANE_SPECIALS = frozenset({"tx", "ty", "tid"})


def _lane_uniform_stmts(kernel) -> frozenset:
    """ids of GLoad/GStore statements with a per-block-uniform index.

    A register is *row-uniform* when every assignment to it is (a) of a
    row-uniform expression and (b) not under lane-divergent control —
    then all lanes of a block always hold the same value.  An index
    built only from row-uniform registers, ``blockIdx``-derived
    specials, params, and constants names one location per block
    (broadcast reads like ``temp[k][0][0]``, per-block result stores),
    so the runtime hazard check and the transaction dedup can run on one
    representative per block instead of every lane.  Divergence of a
    loop is judged from its condition; the fixed point makes values
    flowing around back-edges converge.
    """
    varying: set[str] = set()

    def is_varying(e) -> bool:
        regs, specs = set(), set()
        _walk_expr(e, regs, specs)
        return bool(specs & _LANE_SPECIALS) or bool(regs & varying)

    def visit(stmts, div):
        for s in stmts:
            if isinstance(s, K.Assign):
                if div or is_varying(s.value):
                    varying.add(s.dst)
            elif isinstance(s, (K.GLoad, K.SLoad, K.ShflDown)):
                varying.add(s.dst)
            elif isinstance(s, K.If):
                d = div or is_varying(s.cond)
                visit(s.then, d)
                visit(s.orelse, d)
            elif isinstance(s, (K.While, K.UniformWhile)):
                visit(s.body, div or is_varying(s.cond))

    while True:
        before = len(varying)
        visit(kernel.body, False)
        if len(varying) == before:
            break

    out: set[int] = set()

    def collect(stmts):
        for s in stmts:
            if isinstance(s, (K.GLoad, K.GStore)) \
                    and not is_varying(s.index):
                out.add(id(s))
            elif isinstance(s, K.If):
                collect(s.then)
                collect(s.orelse)
            elif isinstance(s, (K.While, K.UniformWhile)):
                collect(s.body)

    collect(kernel.body)
    return frozenset(out)


def _compact_env(env: BatchedBlockEnv, idx: np.ndarray) -> BatchedBlockEnv:
    """Clone ``env`` with the block axis sliced to rows ``idx``.

    Used by the loop statements once most blocks of a chunk have exited:
    the per-statement NumPy cost then tracks the *live* block count
    instead of the chunk width.  Shared memory is NOT sliced — ``rows``
    keeps the original chunk-row index per surviving block, so shared
    accesses land in the right rows of the full ``(chunk, size)`` arrays.
    All id-carrying fields (``bx``, ``warpkey``, ``block_of``,
    ``block_ids``) hold absolute values, so counters, segment-reuse tags
    and fault RNG substreams are unaffected by the slice.
    """
    sub = BatchedBlockEnv.__new__(BatchedBlockEnv)
    sub.tid, sub.tx, sub.ty = env.tid, env.tx, env.ty
    sub.bdx, sub.bdy, sub.gdx, sub.ntid = env.bdx, env.bdy, env.gdx, env.ntid
    sub.warp_starts, sub.nwarps = env.warp_starts, env.nwarps
    sub.bx = env.bx[idx]
    sub.warpkey = env.warpkey[idx]
    sub.block_of = env.block_of[idx]
    sub.rows = env.rows[idx]
    sub.block_ids = env.block_ids[idx]
    sub.gmem, sub.smem, sub.stats = env.gmem, env.smem, env.stats
    sub.params = env.params
    sub.block_mask = env.block_mask[idx]
    sub.regs = {name: reg[idx] for name, reg in env.regs.items()}
    sub.trace = env.trace
    sub.block_index = env.block_index
    sub.seg_cache = env.seg_cache
    sub.kernel_name = env.kernel_name
    sub.steps = env.steps
    sub.watchdog_budget = env.watchdog_budget
    sub.stuck = env.stuck
    sub.check = env.check
    sub.attr = env.attr
    return sub


def _expand_env(env: BatchedBlockEnv, sub: BatchedBlockEnv,
                idx: np.ndarray) -> None:
    """Scatter a compacted environment's registers back into ``env``.

    Rows outside ``idx`` had no active lanes while ``sub`` ran, so their
    register values are untouched — exactly what the reference executor
    leaves for a block that already exited the loop.  Registers first
    assigned inside the loop materialize at full width here, zero-filled
    where never written, matching ``_assign`` on an uncompacted chunk.
    """
    env.steps = sub.steps
    for name, sreg in sub.regs.items():
        full = env.regs.get(name)
        if full is None or full.dtype != sreg.dtype:
            base = np.zeros(env.block_mask.shape, dtype=sreg.dtype)
            if full is not None:
                np.copyto(base, full, casting="unsafe")
            env.regs[name] = base
            full = base
        full[idx] = sreg


# --------------------------------------------------------------------------
# statement compilation (block-axis variants of executor._compile_stmt)
# --------------------------------------------------------------------------

def _compile_stmt_batched(s: K.Stmt, device: DeviceProperties,
                          uniform_ids: frozenset = frozenset(),
                          slot_sids: dict | None = None):
    """Compile one statement to ``fn(env, mask, aw, aws)`` over a chunk.

    ``mask`` is ``(blocks, threads)`` bool; ``aw`` is the per-block
    active-warp vector of the enclosing region (0 for blocks that the
    reference executor would not run the statement for) and ``aws`` its
    precomputed total — the region runner sums ``aw`` once so straight-
    line statements don't each pay the reduction.  ``uniform_ids`` holds
    the :func:`_lane_uniform_stmts` verdicts; ``slot_sids`` maps each
    global access's segment-reuse slot back to its stamped ``sid`` (for
    the launch-end reuse correction's per-statement attribution).

    Attribution parity with the reference executor: ``execs`` counts
    blocks with at least one active lane (the reference closure runs
    exactly once per such block), ``lanes``/``warp_slots`` are the lane
    and warp-slot sums the reference path accumulates block by block,
    and the counter deltas around each memory access distribute the same
    totals because the accounting calls are shared.
    """
    sid = s.sid
    if isinstance(s, K.Comment):
        return lambda env, mask, aw, aws: None

    if isinstance(s, K.Assign):
        fv = _compile_expr(s.value)
        name = s.dst
        def do_assign(env, mask, aw, aws):
            env.stats.warp_inst_slots += aws
            if env.attr is not None:
                r = env.attr.row(sid)
                r.execs += int(mask.any(axis=1).sum())
                r.lanes += int(mask.sum())
                r.warp_slots += aws
            _assign(env, name, fv(env), mask)
        return do_assign

    if isinstance(s, K.GLoad):
        fi = _compile_expr(s.index)
        name, buf = s.dst, s.buf
        uni = id(s) in uniform_ids
        slot = next(_stmt_slots)
        if slot_sids is not None:
            slot_sids[slot] = sid
        def do_gload(env, mask, aw, aws):
            env.stats.warp_inst_slots += aws
            a = env.attr
            if a is not None:
                st = env.stats
                g0, l0 = st.global_transactions, st.l2_transactions
                b0, d0 = st.global_bytes, st.dram_bytes
                fr = env.gmem.faults
                f0 = len(fr.records) if fr is not None else 0
            idx = np.asarray(fi(env))
            if idx.shape != mask.shape:
                idx = np.broadcast_to(idx, mask.shape)
            act = blk = reps = None
            if uni:
                # statically per-block-uniform index: one representative
                # (the first active lane) stands in for every lane of its
                # block, both for the hazard check and for transaction
                # counting (the block touches exactly one segment)
                rows = np.flatnonzero(mask.any(axis=1))
                rep = idx[rows, mask.argmax(axis=1)[rows]]
                rblk = env.block_ids[rows]
                reps = (rep, rblk)
            if env.check is not None and (state := env.check.get(buf)) \
                    is not None:
                # reading a location a *later* block wrote breaks the
                # sequential block order — abort to the reference path.
                # Reads of locations owned by an earlier block are fine
                # one-sided: in reference block order the earlier block
                # has already stored, and the lockstep chunk replay
                # executes its store statement before this load; the
                # read is recorded in ``maxread`` below, so a subsequent
                # same-chunk *store* by any block ≤ the reader still
                # trips the store-side hazard check.  (This is what lets
                # the fused finish-kernel epilogue — last block reads
                # every gang's partials — stay on the batched path.)
                # Out-of-range indices are clamped here; the load itself
                # raises the real OutOfBoundsError just below.
                owners, maxread = state
                if not uni:
                    act = idx[mask]
                    blk = np.repeat(env.block_ids,
                                    np.count_nonzero(mask, axis=1))
                    rep, rblk = act, blk
                ci = np.minimum(rep, owners.size - 1)
                own = owners[ci]
                if ((own != -1) & (own > rblk)).any():
                    raise _BatchHazard(buf)
                # rblk is non-decreasing along the flattened (block,
                # thread) order, so last-write-wins fancy assignment
                # leaves the per-location max — much cheaper than
                # ``np.maximum.at``'s scalar inner loop
                maxread[ci] = np.maximum(rblk, maxread[ci])
            out = env.gmem.load_batched(
                buf, idx, mask, env.warpkey, env.block_of, env.block_ids,
                env.stats, reuse=(env.seg_cache, slot), act=act,
                act_block=blk, reps=reps)
            if a is not None:
                r = a.row(sid)
                r.execs += int(mask.any(axis=1).sum())
                r.lanes += int(mask.sum())
                r.warp_slots += aws
                _attr_global(r, st, g0, l0, b0, d0)
                if fr is not None:
                    r.fault_events += len(fr.records) - f0
            _assign(env, name, out, mask)
            if env.trace:
                trace = env.stats.trace
                for b in env.block_ids[mask.any(axis=1)]:
                    trace.append(TraceEvent("gload", int(b), buf))
        return do_gload

    if isinstance(s, K.GStore):
        fi, fv = _compile_expr(s.index), _compile_expr(s.value)
        buf = s.buf
        uni = id(s) in uniform_ids
        slot = next(_stmt_slots)
        if slot_sids is not None:
            slot_sids[slot] = sid
        def do_gstore(env, mask, aw, aws):
            env.stats.warp_inst_slots += aws
            a = env.attr
            if a is not None:
                st = env.stats
                g0, l0 = st.global_transactions, st.l2_transactions
                b0, d0 = st.global_bytes, st.dram_bytes
            idx = np.asarray(fi(env))
            if idx.shape != mask.shape:
                idx = np.broadcast_to(idx, mask.shape)
            val = np.asarray(fv(env))
            if val.shape != mask.shape:
                val = np.broadcast_to(val, mask.shape)
            act = blk = reps = None
            if uni:
                rows = np.flatnonzero(mask.any(axis=1))
                rep = idx[rows, mask.argmax(axis=1)[rows]]
                rblk = env.block_ids[rows]
                reps = (rep, rblk)
            if env.check is not None and (state := env.check.get(buf)) \
                    is not None:
                # claim locations for the writing block.  Hazards: the
                # location belongs to another block, or a higher block
                # already read it (sequentially that read runs *after*
                # this store and must see it).  Same-statement first-write
                # collisions need no flag: the highest block wins in both
                # executors.
                owners, maxread = state
                if not uni:
                    act = idx[mask]
                    blk = np.repeat(env.block_ids,
                                    np.count_nonzero(mask, axis=1))
                    rep, rblk = act, blk
                ci = np.minimum(rep, owners.size - 1)
                own = owners[ci]
                if ((own != -1) & (own != rblk)).any():
                    raise _BatchHazard(buf)
                if (maxread[ci] > rblk).any():
                    raise _BatchHazard(buf)
                owners[ci] = rblk
            env.gmem.store_batched(
                buf, idx, val, mask, env.warpkey, env.block_of, env.stats,
                reuse=(env.seg_cache, slot), act=act, act_block=blk,
                reps=reps)
            if a is not None:
                r = a.row(sid)
                r.execs += int(mask.any(axis=1).sum())
                r.lanes += int(mask.sum())
                r.warp_slots += aws
                _attr_global(r, st, g0, l0, b0, d0)
            if env.trace:
                trace = env.stats.trace
                for b in env.block_ids[mask.any(axis=1)]:
                    trace.append(TraceEvent("gstore", int(b), buf))
        return do_gstore

    if isinstance(s, K.SLoad):
        fi = _compile_expr(s.index)
        name, arr = s.dst, s.arr
        def do_sload(env, mask, aw, aws):
            env.stats.warp_inst_slots += aws
            idx = np.asarray(fi(env))
            if idx.shape != mask.shape:
                idx = np.broadcast_to(idx, mask.shape)
            a = env.attr
            if a is not None:
                st = env.stats
                s0, c0 = st.shared_accesses, st.bank_conflict_extra
                fr = env.smem.faults
                f0 = len(fr.records) if fr is not None else 0
            out = env.smem.load(arr, idx, mask, env.warpkey, env.rows)
            if a is not None:
                r = a.row(sid)
                r.execs += int(mask.any(axis=1).sum())
                r.lanes += int(mask.sum())
                r.warp_slots += aws
                r.shared_accesses += st.shared_accesses - s0
                r.bank_conflict_extra += st.bank_conflict_extra - c0
                if fr is not None:
                    r.fault_events += len(fr.records) - f0
            _assign(env, name, out, mask)
        return do_sload

    if isinstance(s, K.SStore):
        fi, fv = _compile_expr(s.index), _compile_expr(s.value)
        arr = s.arr
        def do_sstore(env, mask, aw, aws):
            env.stats.warp_inst_slots += aws
            idx = np.asarray(fi(env))
            if idx.shape != mask.shape:
                idx = np.broadcast_to(idx, mask.shape)
            val = np.asarray(fv(env))
            if val.shape != mask.shape:
                val = np.broadcast_to(val, mask.shape)
            a = env.attr
            if a is not None:
                st = env.stats
                s0, c0 = st.shared_accesses, st.bank_conflict_extra
            env.smem.store(arr, idx, val, mask, env.warpkey, env.rows)
            if a is not None:
                r = a.row(sid)
                r.execs += int(mask.any(axis=1).sum())
                r.lanes += int(mask.sum())
                r.warp_slots += aws
                r.shared_accesses += st.shared_accesses - s0
                r.bank_conflict_extra += st.bank_conflict_extra - c0
        return do_sstore

    if isinstance(s, K.If):
        fc = _compile_expr(s.cond)
        fthen = _compile_block_batched(s.then, device, uniform_ids,
                                       slot_sids)
        felse = _compile_block_batched(s.orelse, device, uniform_ids,
                                       slot_sids) if s.orelse else None
        def do_if(env, mask, aw, aws):
            env.stats.warp_inst_slots += aws
            c = _truthy(np.asarray(fc(env)))
            if c.shape != mask.shape:
                c = np.broadcast_to(c, mask.shape)
            m_then = mask & c
            m_else = mask & ~c
            t = np.add.reduceat(m_then, env.warp_starts, axis=1) > 0
            e = np.add.reduceat(m_else, env.warp_starts, axis=1) > 0
            d = int((t & e).sum())
            env.stats.divergent_branches += d
            if env.attr is not None:
                r = env.attr.row(sid)
                r.execs += int(mask.any(axis=1).sum())
                r.lanes += int(mask.sum())
                r.warp_slots += aws
                r.divergence_splits += d
            if m_then.any():
                fthen(env, m_then, t.sum(axis=1))
            if felse is not None and m_else.any():
                felse(env, m_else, e.sum(axis=1))
        return do_if

    if isinstance(s, K.While):
        fc = _compile_expr(s.cond)
        fbody = _compile_block_batched(s.body, device, uniform_ids,
                                       slot_sids)
        def do_while(env, mask, aw, aws):
            c = _truthy(np.asarray(fc(env)))
            if c.shape != mask.shape:
                c = np.broadcast_to(c, mask.shape)
            m = mask & c
            env.stats.warp_inst_slots += aws  # first check
            r = None
            if env.attr is not None:
                r = env.attr.row(sid)
                r.execs += int(mask.any(axis=1).sum())
                r.lanes += int(mask.sum())
                r.warp_slots += aws
            stack = []  # (parent env, kept rows) per compaction level
            live = m.any(axis=1)
            lc = int(live.sum())
            while lc:
                if lc * 2 <= m.shape[0]:
                    # most blocks have exited (m only ever shrinks):
                    # slice the working set to the live rows
                    idx = np.flatnonzero(live)
                    stack.append((env, idx))
                    env = _compact_env(env, idx)
                    m = m[idx]
                env.steps += lc
                if env.steps > env.watchdog_budget:
                    _watchdog_trip(env)
                maw = _warps_per_block(env, m)
                maws = int(maw.sum())
                fbody(env, m, maw, maws)
                c = _truthy(np.asarray(fc(env)))
                if c.shape != m.shape:
                    c = np.broadcast_to(c, m.shape)
                m2 = m & c
                if env.stuck:
                    # injected stuck warps: a block whose exit would fire
                    # keeps its previous mask — its loop never ends
                    dead = m.any(axis=1) & ~m2.any(axis=1)
                    if dead.any():
                        m2 = np.where(dead[:, None], m, m2)
                m = m2
                env.stats.warp_inst_slots += maws  # re-check
                if r is not None:
                    r.warp_slots += maws
                live = m.any(axis=1)
                lc = int(live.sum())
            for parent, idx in reversed(stack):
                _expand_env(parent, env, idx)
                env = parent
        return do_while

    if isinstance(s, K.UniformWhile):
        fc = _compile_expr(s.cond)
        fbody = _compile_block_batched(s.body, device, uniform_ids,
                                       slot_sids)
        def do_uwhile(env, mask, aw, aws):
            env.stats.warp_inst_slots += aws
            live = mask.any(axis=1)
            r = None
            if env.attr is not None:
                r = env.attr.row(sid)
                r.execs += int(live.sum())
                r.lanes += int(mask.sum())
                r.warp_slots += aws
            if not live.any():
                return
            stack = []  # (parent env, kept rows) per compaction level
            while True:
                env.steps += int(live.sum())
                if env.steps > env.watchdog_budget:
                    _watchdog_trip(env)
                c = _truthy(np.asarray(fc(env)))
                if c.shape != mask.shape:
                    c = np.broadcast_to(c, mask.shape)
                if not env.stuck:
                    live = live & (mask & c).any(axis=1)
                lc = int(live.sum())
                if not lc:
                    break
                if lc * 2 <= mask.shape[0]:
                    # most blocks have left the loop (live only shrinks):
                    # slice the working set to the live rows
                    idx = np.flatnonzero(live)
                    stack.append((env, idx))
                    env = _compact_env(env, idx)
                    mask, aw, live = mask[idx], aw[idx], live[idx]
                bmask = mask & live[:, None]
                baw = np.where(live, aw, 0)
                baws = int(baw.sum())
                fbody(env, bmask, baw, baws)
                env.stats.warp_inst_slots += baws
                if r is not None:
                    r.warp_slots += baws
            for parent, idx in reversed(stack):
                _expand_env(parent, env, idx)
                env = parent
        return do_uwhile

    if isinstance(s, K.Sync):
        def do_sync(env, mask, aw, aws):
            anyb = mask.any(axis=1)
            allb = mask.all(axis=1)
            partial = anyb & ~allb
            if partial.any():
                bad = int(np.flatnonzero(partial)[0])
                raise BarrierDivergenceError(
                    "__syncthreads() executed under divergent control flow "
                    f"({int(mask[bad].sum())}/{mask.shape[1]} threads active)"
                )
            env.stats.barriers += int(anyb.sum())
            env.stats.warp_inst_slots += aws
            if env.attr is not None:
                r = env.attr.row(sid)
                arrived = int(anyb.sum())
                r.execs += arrived
                r.lanes += int(mask.sum())
                r.warp_slots += aws
                r.barrier_arrivals += arrived
                r.barrier_wait_slots += aws
            if env.trace:
                trace = env.stats.trace
                for b in env.block_ids[anyb]:
                    trace.append(TraceEvent("sync", int(b), ""))
        return do_sync

    if isinstance(s, K.ShflDown):
        dst, src, delta = s.dst, s.src, s.delta
        ws = device.warp_size
        def do_shfl(env, mask, aw, aws):
            env.stats.warp_inst_slots += aws
            if env.attr is not None:
                r = env.attr.row(sid)
                r.execs += int(mask.any(axis=1).sum())
                r.lanes += int(mask.sum())
                r.warp_slots += aws
            try:
                reg = env.regs[src]
            except KeyError:
                raise SimulationError(
                    f"register {src!r} read before assignment") from None
            n = reg.shape[-1]
            ar = np.arange(n)
            lane = ar % ws
            src_idx = np.where(lane + delta < ws,
                               np.minimum(ar + delta, n - 1), ar)
            _assign(env, dst, reg[:, src_idx], mask)
        return do_shfl

    if isinstance(s, K.AtomicUpdate):
        fi, fv = _compile_expr(s.index), _compile_expr(s.value)
        buf = s.buf
        try:
            combine = ATOMIC_OPS[s.op]
        except KeyError:
            raise SimulationError(
                f"no atomic support for operator {s.op!r}") from None
        def do_atomic(env, mask, aw, aws):
            env.stats.warp_inst_slots += aws
            idx = np.asarray(fi(env))
            if idx.shape != mask.shape:
                idx = np.broadcast_to(idx, mask.shape)
            val = np.asarray(fv(env))
            if val.shape != mask.shape:
                val = np.broadcast_to(val, mask.shape)
            a = env.attr
            if a is not None:
                st = env.stats
                g0, l0 = st.global_transactions, st.l2_transactions
                b0, d0 = st.global_bytes, st.dram_bytes
            # ufunc.at applies duplicates in flattened (block, thread)
            # order — the same combine order as blocks run one at a time
            env.gmem.atomic_update(buf, idx, val, mask, env.warpkey,
                                   env.stats, combine)
            if a is not None:
                r = a.row(sid)
                r.execs += int(mask.any(axis=1).sum())
                r.lanes += int(mask.sum())
                r.warp_slots += aws
                _attr_global(r, st, g0, l0, b0, d0)
                r.atomic_rounds += st.global_transactions - g0
        return do_atomic

    raise SimulationError(f"unknown statement node {s!r}")


def _compile_block_batched(stmts: tuple, device: DeviceProperties,
                           uniform_ids: frozenset = frozenset(),
                           slot_sids: dict | None = None):
    fns = [_compile_stmt_batched(s, device, uniform_ids, slot_sids)
           for s in stmts]
    def run(env, mask, aw, aws=None):
        if aws is None:
            aws = int(aw.sum())
        for f in fns:
            f(env, mask, aw, aws)
    return run


# --------------------------------------------------------------------------
# launch driver
# --------------------------------------------------------------------------

def run_batched(ck, gmem: GlobalMemory, grid_dim: int,
                block_dim: tuple[int, int], stats: KernelStats,
                params: dict, trace: bool, faults, budget: float,
                stuck: bool, block_batch: int | None,
                check: dict | None = None) -> KernelStats:
    """Execute a validated launch over block chunks of ``block_batch``.

    Called by :meth:`~repro.gpu.executor.CompiledKernel.run` after launch
    validation, fault-arming, and stats construction.  Results and
    counters are invariant under the chunk size: per-launch state (loop
    ``steps``, the segment-reuse cache keyed by absolute block ids)
    carries across chunks, and the cross-block reuse correction runs once
    at launch end.
    """
    bdx, bdy = block_dim
    chunk = int(block_batch) if block_batch and block_batch > 0 \
        else DEFAULT_BLOCK_BATCH
    body = ck._batched_body
    if body is None:
        body = ck._batched_body = _compile_block_batched(
            ck.kernel.body, ck.device, _lane_uniform_stmts(ck.kernel),
            ck._slot_sids)
    seg_cache: dict = {}
    steps = 0
    prev_faults = gmem.faults
    if faults is not None:
        gmem.faults = faults
    try:
        for start in range(0, grid_dim, chunk):
            ids = np.arange(start, min(start + chunk, grid_dim),
                            dtype=np.int64)
            env = BatchedBlockEnv(bdx, bdy, grid_dim, ids, gmem, stats,
                                  params, ck.device.warp_size, trace)
            env.smem = BatchedSharedMemory(
                ck.device, ck.kernel.shared, stats, len(ids),
                faults=faults, block_ids=ids)
            env.seg_cache = seg_cache
            env.kernel_name = ck.kernel.name
            env.steps = steps
            env.watchdog_budget = budget
            env.stuck = stuck
            env.check = check
            env.attr = stats.attribution
            body(env, env.block_mask,
                 np.full(len(ids), env.nwarps, dtype=np.int64))
            steps = env.steps
            if check is not None and start + chunk < grid_dim:
                # chunk boundary: earlier chunks are complete and every
                # later block outranks them, so cross-chunk sharing is
                # sequential-consistent — reset the hazard state
                for owners, maxread in check.values():
                    owners.fill(-1)
                    maxread.fill(-1)
    finally:
        gmem.faults = prev_faults
    finalize_segment_reuse(seg_cache, stats, ck.device.transaction_bytes,
                           attr=stats.attribution,
                           slot_sids=ck._slot_sids)
    return stats
