"""SIMT GPGPU simulator substrate.

This subpackage is the hardware the rest of the stack targets.  It models the
execution hierarchy the paper builds on (grid → thread block → warp → thread,
per-block shared memory, device-wide global memory, ``__syncthreads``
barriers) and an analytic cost model calibrated to a Kepler-K20c-class
device so benchmarks report a *modeled* kernel time.

Public entry points:

* :class:`~repro.gpu.device.DeviceProperties` — device limits and timing
  constants (the default is K20c-like, matching the paper's platform).
* :class:`~repro.gpu.memory.GlobalMemory` / allocation of device buffers.
* :mod:`~repro.gpu.kernelir` — the kernel IR the compiler emits.
* :func:`~repro.gpu.launch.launch` — run a kernel over a grid and obtain a
  :class:`~repro.gpu.launch.LaunchReport` with correctness-visible effects
  (buffer contents) plus modeled timing.
"""

from repro.gpu.device import DeviceProperties, K20C
from repro.gpu.memory import GlobalMemory, SharedMemory, Buffer
from repro.gpu.launch import launch, LaunchReport
from repro.gpu.costmodel import CostModel
from repro.gpu.events import KernelStats

__all__ = [
    "DeviceProperties",
    "K20C",
    "GlobalMemory",
    "SharedMemory",
    "Buffer",
    "launch",
    "LaunchReport",
    "CostModel",
    "KernelStats",
]
