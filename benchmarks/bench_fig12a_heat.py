"""Benchmark: Fig. 12(a) — 2-D heat equation with max-reduction convergence.

Grid sizes swept per compiler.  The reproduction targets: OpenUH converges
and beats vendor-b at every size; vendor-a never converges (its bar is
missing in the paper's figure).
"""

import pytest

from repro.apps.heat2d import solve_heat

from conftest import FULL, run_once

SIZES = (32, 48, 64) if FULL else (16, 24)
GEOM = dict() if FULL else dict(num_gangs=16, vector_length=32)


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("compiler", ("openuh", "vendor-b"))
def test_heat_converges(benchmark, n, compiler):
    r = run_once(benchmark, solve_heat, n=n, tol=0.5, max_iters=150,
                 compiler=compiler, **GEOM)
    benchmark.extra_info["modeled_ms"] = round(r.kernel_ms, 3)
    benchmark.extra_info["iterations"] = r.iterations
    assert r.converged


@pytest.mark.parametrize("n", SIZES[:1])
def test_heat_vendor_a_never_converges(benchmark, n):
    r = run_once(benchmark, solve_heat, n=n, tol=0.5, max_iters=60,
                 compiler="vendor-a", **GEOM)
    benchmark.extra_info["status"] = "no-convergence"
    assert not r.converged


@pytest.mark.parametrize("n", SIZES)
def test_heat_openuh_beats_vendor_b(benchmark, n):
    def run():
        ours = solve_heat(n=n, tol=0.5, max_iters=150, **GEOM)
        theirs = solve_heat(n=n, tol=0.5, max_iters=150,
                            compiler="vendor-b", **GEOM)
        return ours, theirs

    ours, theirs = run_once(benchmark, run)
    benchmark.extra_info["openuh_ms"] = round(ours.kernel_ms, 3)
    benchmark.extra_info["vendor_b_ms"] = round(theirs.kernel_ms, 3)
    assert ours.converged and theirs.converged
    assert ours.kernel_ms < theirs.kernel_ms  # "always better than PGI"
