"""Benchmark: the paper's full-coverage claim as a runnable grid.

§1 contributions: *"Our algorithms cover all possible cases of reduction
in three levels of parallelism, all reduction operator types and operand
data types."*  This runs every (position × operator × type) combination
under the OpenUH profile and asserts a clean sweep.
"""

from repro.testsuite import run_testsuite
from repro.testsuite.cases import ALL_CTYPES, ALL_OPS, POSITIONS

from conftest import FULL, run_once

SIZE = 2048 if FULL else 256
GEOM = dict(num_gangs=6, num_workers=4, vector_length=32) \
    if not FULL else dict()


def test_full_operator_and_type_coverage(benchmark):
    def run():
        return run_testsuite(compilers=("openuh",), positions=POSITIONS,
                             ops=ALL_OPS, ctypes=ALL_CTYPES, size=SIZE,
                             **GEOM)

    rep = run_once(benchmark, run)
    total = rep.total("openuh")
    passed = rep.pass_count("openuh")
    benchmark.extra_info["grid"] = f"{passed}/{total}"
    # 7 positions x (6 ops x 4 types + 3 int-only ops x 2 types) = 210
    assert total == 7 * (6 * 4 + 3 * 2)
    assert passed == total, rep.to_table()
