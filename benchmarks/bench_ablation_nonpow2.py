"""Benchmark: ablation A6 — non-power-of-two vector sizes (§3.3).

"The recommended vector threads size is multiple of warp size (32) ...
the correctness will not be affected but the performance will degrade."
"""

from repro.bench.ablations import a6_nonpow2_vector

from conftest import FULL, run_once

SIZE = 16384 if FULL else 2048


def test_a6_nonpow2_vector_sizes(benchmark):
    rows = run_once(benchmark, a6_nonpow2_vector, size=SIZE)
    for row in rows:
        benchmark.extra_info[row.config] = \
            f"{row.kernel_ms:.3f} ms, {row.counters['sync']} barriers"
        print(row)
    by_vl = {row.config.split("=")[1].split()[0]: row for row in rows}
    # 96 is not a power of two but still a warp multiple: correct, cheap
    # (pre-fold handles it); 100 forfeits the warp-sync elision entirely
    assert by_vl["100"].counters["sync"] > by_vl["128"].counters["sync"]
    assert by_vl["100"].counters["sync"] > by_vl["96"].counters["sync"]
