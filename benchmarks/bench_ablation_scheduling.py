"""Benchmark: ablation A3 — window-sliding vs blocking scheduling (§3.1.3).

"The window sliding technique is superior than blocking algorithm in vector
partial reduction since it can enable memory coalescing."
"""

from repro.bench.ablations import a3_scheduling

from conftest import FULL, run_once

SIZE = (1 << 22) if FULL else (1 << 19)


def test_a3_window_vs_blocking(benchmark):
    rows = run_once(benchmark, a3_scheduling, size=SIZE)
    for row in rows:
        benchmark.extra_info[row.config] = f"{row.kernel_ms:.3f} ms"
        print(row)
    window, blocking = rows
    # blocking defeats coalescing: many more warp memory requests
    w_req = window.counters["dram_tx"] + window.counters["l2"]
    b_req = blocking.counters["dram_tx"] + blocking.counters["l2"]
    assert b_req > w_req
    assert blocking.kernel_ms > window.kernel_ms
