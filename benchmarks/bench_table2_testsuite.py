"""Benchmark: Table 2 — the reduction testsuite across three compilers.

Every (position, operator, compiler) cell of the paper's Table 2 (int
column by default; the full table is the ``python -m repro.bench.table2``
CLI).  The benchmark's ``extra_info`` carries the modeled kernel ms and the
pass/F/CE status — the actual reproduction targets.
"""

import pytest

from repro.testsuite import POSITIONS, make_case, run_case

from conftest import FULL, run_once

COMPILERS = ("openuh", "vendor-b", "vendor-a")
SIZE = 8192 if FULL else 768
GEOM = (dict() if FULL
        else dict(num_gangs=8, num_workers=4, vector_length=32))


@pytest.mark.parametrize("compiler", COMPILERS)
@pytest.mark.parametrize("op", ["+", "*"])
@pytest.mark.parametrize("position", POSITIONS)
def test_table2_cell(benchmark, position, op, compiler):
    case = make_case(position, op, "int", size=SIZE)
    result = run_once(benchmark, run_case, case, compiler, **GEOM)
    benchmark.extra_info["status"] = result.status
    benchmark.extra_info["modeled_ms"] = result.modeled_ms
    benchmark.extra_info["cell"] = result.cell()
    # the Table 2 pass/fail pattern is part of the reproduction: check it
    expected_fail = {
        ("vendor-b", "worker", "+"): "F",
        ("vendor-b", "vector", "+"): "F",
        ("vendor-b", "gang worker", "+"): "F",
        ("vendor-b", "gang worker vector", "+"): "CE",
        ("vendor-a", "gang worker", "+"): "F",
        ("vendor-a", "worker vector", "+"): "F",
        ("vendor-a", "gang worker vector", "+"): "F",
    }
    want = expected_fail.get((compiler, position, op), "pass")
    assert result.status == want, \
        f"{position} [{op}] {compiler}: {result.status} != {want}"


def test_table2_summary(benchmark):
    """One row: the whole (quick) grid, printing the rendered table."""
    from repro.testsuite import run_testsuite

    def run():
        return run_testsuite(ops=("+", "*"), ctypes=("int",),
                             size=512, num_gangs=8, num_workers=4,
                             vector_length=32)

    rep = run_once(benchmark, run)
    print()
    print(rep.to_table())
    benchmark.extra_info["openuh_pass"] = rep.pass_count("openuh")
    assert rep.pass_count("openuh") == rep.total("openuh")
