"""Benchmark: Fig. 12(c) — Monte Carlo π over pre-generated samples.

Sample counts swept per compiler; modeled time includes the PCIe transfer
of the sample buffers (the paper's 1/2/4 GB sweep is exactly a transfer +
gang·vector-reduction scaling experiment).
"""

import numpy as np
import pytest

from repro.apps.montecarlo_pi import estimate_pi

from conftest import FULL, run_once

SIZES = (1 << 18, 1 << 19, 1 << 20) if FULL else (1 << 13, 1 << 14)
GEOM = dict() if FULL else dict(num_gangs=16, vector_length=64)


@pytest.mark.parametrize("n", SIZES, ids=[f"{n >> 10}K" for n in SIZES])
@pytest.mark.parametrize("compiler", ("openuh", "vendor-b", "vendor-a"))
def test_pi(benchmark, n, compiler):
    r = run_once(benchmark, estimate_pi, n, compiler=compiler, **GEOM)
    benchmark.extra_info["modeled_ms"] = round(r.total_ms, 3)
    benchmark.extra_info["pi"] = round(r.pi, 5)
    assert abs(r.pi - np.pi) < 0.1


@pytest.mark.parametrize("n", SIZES[-1:])
def test_pi_compiler_ordering(benchmark, n):
    """OpenUH ≤ vendor-a < vendor-b on kernel time (the Fig. 12(c) order)."""
    def run():
        return {c: estimate_pi(n, compiler=c, **GEOM)
                for c in ("openuh", "vendor-a", "vendor-b")}

    rs = run_once(benchmark, run)
    for c, r in rs.items():
        benchmark.extra_info[c] = round(r.kernel_ms, 4)
    assert rs["openuh"].kernel_ms <= rs["vendor-a"].kernel_ms * 1.05
    assert rs["openuh"].kernel_ms < rs["vendor-b"].kernel_ms
