"""Benchmark: Fig. 11 — per-position compiler comparison (float column).

One benchmark per (subfigure, compiler); ``extra_info`` carries the modeled
ms per (operator) cell, mirroring the bars of Fig. 11(a)-(g).
"""

import pytest

from repro.testsuite import POSITIONS, make_case, run_case
from repro.bench.fig11 import SUBFIGURES

from conftest import FULL, run_once

COMPILERS = ("openuh", "vendor-b", "vendor-a")
SIZE = 8192 if FULL else 768
GEOM = (dict() if FULL
        else dict(num_gangs=8, num_workers=4, vector_length=32))


@pytest.mark.parametrize("compiler", COMPILERS)
@pytest.mark.parametrize("position", POSITIONS,
                         ids=[f"fig11{SUBFIGURES[p]}" for p in POSITIONS])
def test_fig11_subfigure(benchmark, position, compiler):
    def run():
        cells = {}
        for op in ("+", "*"):
            case = make_case(position, op, "float", size=SIZE)
            r = run_case(case, compiler, **GEOM)
            cells[op] = r.cell()
        return cells

    cells = run_once(benchmark, run)
    for op, cell in cells.items():
        benchmark.extra_info[f"[{op}] float"] = cell
    if compiler == "openuh":
        assert all(c not in ("F", "CE") for c in cells.values())
