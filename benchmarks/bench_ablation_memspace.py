"""Benchmark: ablation A7 — reduction staging in shared vs global memory
(§3.3: the global-memory fallback for when shared memory is reserved for
other computation, e.g. blocked matrix multiplication)."""

from repro.bench.ablations import a7_memory_space

from conftest import FULL, run_once

SIZE = (1 << 20) if FULL else (1 << 16)


def test_a7_shared_vs_global_staging(benchmark):
    rows = run_once(benchmark, a7_memory_space, size=SIZE)
    for row in rows:
        benchmark.extra_info[row.config] = f"{row.kernel_ms:.3f} ms"
        print(row)
    shared, global_ = rows
    # global staging frees shared memory entirely...
    assert global_.counters["smem_bytes"] == 0
    assert shared.counters["smem_bytes"] > 0
    # ...at the price of global-memory traffic for the staging
    assert global_.counters["dram_tx"] + global_.counters["l2"] \
        > shared.counters["dram_tx"] + shared.counters["l2"]
