"""Benchmark: ablation A8 — gang-reduction handoff styles.

The paper's scheme (per-thread partial buffer + single-block finish kernel,
§3.2.2) vs the modern alternative (block-local reduce + one device atomic
per block, no second launch).  The trade-off the numbers expose: the finish
kernel costs a launch plus a one-block scan of gangs×workers×vector
partials; atomics serialize but there are only num_gangs of them.
"""

from repro.bench.ablations import a8_gang_handoff

from conftest import FULL, run_once

SIZE = (1 << 20) if FULL else (1 << 16)


def test_a8_gang_handoff(benchmark):
    rows = run_once(benchmark, a8_gang_handoff, size=SIZE)
    for row in rows:
        benchmark.extra_info[row.config] = f"{row.kernel_ms:.3f} ms"
        print(row)
    buffer_style, atomic_style = rows
    # both verified correct inside the harness; the atomic style avoids the
    # finish kernel's launch + one-block scan
    assert atomic_style.kernel_ms < buffer_style.kernel_ms
