"""Benchmark: ablation A5 — RMP direct flat combine vs the rejected
level-by-level alternative (§3.2.1)."""

from repro.bench.ablations import a5_rmp_style

from conftest import FULL, run_once

SIZE = (1 << 20) if FULL else (1 << 16)


def test_a5_rmp_styles_agree_and_report(benchmark):
    rows = run_once(benchmark, a5_rmp_style, size=SIZE)
    for row in rows:
        benchmark.extra_info[row.config] = \
            f"{row.kernel_ms:.3f} ms, {row.counters['sync']} barriers"
        print(row)
    direct, lbl = rows
    # both are correct (verified inside the harness); the design point is
    # the reduction-pass count: level-by-level runs one staged reduction
    # per level instead of one flat combine
    assert direct.kernel_ms > 0 and lbl.kernel_ms > 0
