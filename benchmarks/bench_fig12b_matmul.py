"""Benchmark: Fig. 12(b) — matrix multiplication, k loop as vector '+'.

Sizes swept; OpenUH vs vendor-a (CAPS-like; the paper reports OpenUH >2x
faster), with vendor-b's bar missing because its vector '+' reduction is
wrong (as in the paper).
"""

import numpy as np
import pytest

from repro.apps.matmul import matmul

from conftest import FULL, run_once

SIZES = (32, 48, 64) if FULL else (12, 16)
GEOM = (dict() if FULL
        else dict(num_gangs=8, num_workers=2, vector_length=32))


def _mats(n):
    rng = np.random.default_rng(n)
    return (rng.random((n, n)).astype(np.float32),
            rng.random((n, n)).astype(np.float32))


@pytest.mark.parametrize("n", SIZES)
@pytest.mark.parametrize("compiler", ("openuh", "vendor-a"))
def test_matmul(benchmark, n, compiler):
    A, B = _mats(n)
    r = run_once(benchmark, matmul, A, B, compiler=compiler, **GEOM)
    benchmark.extra_info["modeled_ms"] = round(r.kernel_ms, 3)
    assert r.correct


@pytest.mark.parametrize("n", SIZES[:1])
def test_matmul_vendor_b_bar_missing(benchmark, n):
    A, B = _mats(n)
    r = run_once(benchmark, matmul, A, B, compiler="vendor-b", **GEOM)
    benchmark.extra_info["status"] = "F"
    assert not r.correct  # the missing PGI bar of Fig. 12(b)


@pytest.mark.parametrize("n", SIZES)
def test_matmul_openuh_beats_vendor_a(benchmark, n):
    A, B = _mats(n)

    def run():
        return (matmul(A, B, **GEOM),
                matmul(A, B, compiler="vendor-a", **GEOM))

    ours, theirs = run_once(benchmark, run)
    benchmark.extra_info["openuh_ms"] = round(ours.kernel_ms, 3)
    benchmark.extra_info["vendor_a_ms"] = round(theirs.kernel_ms, 3)
    benchmark.extra_info["factor"] = round(theirs.kernel_ms
                                           / ours.kernel_ms, 2)
    assert ours.kernel_ms < theirs.kernel_ms
