"""Benchmark: ablation A9 — shared-memory log-step vs warp shuffles.

Kepler introduced ``__shfl_down``; the paper's log-step stages every
partial through shared memory instead.  The shuffle tree needs no shared
memory for the intra-warp combine and no barriers until the cross-warp
handoff — the counters quantify exactly that.
"""

from repro.bench.ablations import a9_shuffle

from conftest import FULL, run_once

SIZE = 16384 if FULL else 2048


def test_a9_logstep_vs_shuffle(benchmark):
    rows = run_once(benchmark, a9_shuffle, size=SIZE)
    for row in rows:
        benchmark.extra_info[row.config] = \
            (f"{row.kernel_ms:.3f} ms, {row.counters['sync']} barriers, "
             f"{row.counters['dram_tx']} tx")
        print(row)
    logstep, shuffle = rows
    assert shuffle.counters["sync"] < logstep.counters["sync"]
    assert shuffle.kernel_ms <= logstep.kernel_ms * 1.02
