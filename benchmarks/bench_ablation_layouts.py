"""Benchmark: ablations A1/A2 — shared-memory layouts (Fig. 6 and Fig. 8).

A1: row vs transposed vector-reduction layout (bank conflicts);
A2: first-row vs duplicated-rows worker strategy (footprint + barriers).
"""

import pytest

from repro.bench.ablations import a1_vector_layouts, a2_worker_strategies

from conftest import FULL, run_once

SIZE = 16384 if FULL else 2048


def test_a1_vector_layouts(benchmark):
    rows = run_once(benchmark, a1_vector_layouts, size=SIZE)
    for row in rows:
        benchmark.extra_info[row.config] = f"{row.kernel_ms:.3f} ms"
        print(row)
    row_layout, transposed = rows
    # the paper's reason for Fig. 6(c): the transposed layout bank-conflicts
    assert transposed.counters["bankconf"] > row_layout.counters["bankconf"]
    assert transposed.kernel_ms >= row_layout.kernel_ms


def test_a2_worker_strategies(benchmark):
    rows = run_once(benchmark, a2_worker_strategies, size=SIZE)
    for row in rows:
        benchmark.extra_info[row.config] = f"{row.kernel_ms:.3f} ms"
        print(row)
    first_row, duplicated = rows
    # §3.1.2: 8(b) "consumes a lot of shared memory ... and it needs to
    # insert synchronization between each iteration"
    assert duplicated.counters["smem_bytes"] > first_row.counters["smem_bytes"]
    assert duplicated.counters["sync"] > first_row.counters["sync"]
