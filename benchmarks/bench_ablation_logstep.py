"""Benchmark: ablation A4 — warp-aware barrier elision in the log-step
reduction (§3.1.1/§3.1.2: no synchronization in the last warp's
iterations)."""

from repro.bench.ablations import a4_sync_elision

from conftest import FULL, run_once

SIZE = 16384 if FULL else 2048


def test_a4_sync_elision(benchmark):
    rows = run_once(benchmark, a4_sync_elision, size=SIZE)
    for row in rows:
        benchmark.extra_info[row.config] = \
            f"{row.kernel_ms:.3f} ms, {row.counters['sync']} barriers"
        print(row)
    elided, every_step = rows
    assert every_step.counters["sync"] > 2 * elided.counters["sync"]
    assert every_step.kernel_ms >= elided.kernel_ms
