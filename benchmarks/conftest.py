"""Shared configuration for the benchmark suite.

Every benchmark runs the simulator once (``rounds=1``) — the interesting
output is the *modeled* device time attached to ``benchmark.extra_info``
(key ``modeled_ms``), not the host wall time pytest-benchmark measures.
Scale knobs: set ``REPRO_BENCH_SCALE=full`` for paper-shaped sizes (slow);
the default keeps the whole suite to a few minutes.

Regenerate the full artifacts with the CLIs instead::

    python -m repro.bench.table2
    python -m repro.bench.fig11
    python -m repro.bench.fig12
    python -m repro.bench.ablations
"""

import os

import pytest

FULL = os.environ.get("REPRO_BENCH_SCALE", "").lower() == "full"


@pytest.fixture
def bench_scale():
    """'full' (paper-shaped sizes) or 'quick' (CI-friendly)."""
    return "full" if FULL else "quick"


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under the benchmark fixture and return its
    value (pytest-benchmark's pedantic mode)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
